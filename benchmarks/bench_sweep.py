"""Engine benchmarks: the sweep engines against their per-point ancestors.

Four acceptance criteria live here:

* **Analytical** (PR 3): at 1000 sweep points the template-driven sweep
  (build the chain once, rewrite only the affected generator entries,
  re-factorize) must be at least **10x** faster than the retired per-point
  path that reconstructs builder, chain, validation and solver objects for
  every point — while producing the same series to 1e-12.
* **Monte Carlo stacked grids** (PR 4): a 32-point sweep at 5000 lifetimes
  per point, run as one stacked grid (per-lifetime parameter arrays, a
  handful of kernel invocations for the whole grid, segmented per-point
  aggregation), must be at least **5x** faster than the per-point path it
  replaces — one full independent sharded study per value, each paying its
  own kernel launches, shard scheduling and executor lifecycle.  The
  stacked decomposition is worker-count independent, so the same benchmark
  asserts that ``workers=2`` results are bit-identical to ``workers=1``.
* **Allocation-lean kernels** (PR 5): on the same 32 x 5k single-process
  stacked grid, the compacted/arena kernel path must beat the retained
  uncompacted oracle (``compact=False``) by at least **1.3x** while
  consuming the random stream identically (batches compared bitwise).
* **Zero-copy transport** (PR 5): a 256-point x 10k-lifetime grid on 4
  workers, run on the zero-copy execution plane (shared-memory parameter
  planes + compacted kernels, today's default), measured against the
  retained legacy plane (per-shard pickle rebuild + uncompacted kernels)
  with **bit-identical results always asserted**.  The **2x floor** is an
  explicit opt-in (``REPRO_BENCH_TRANSPORT_STRICT=1``, >= 4 cores): it
  describes the *transport-bound* regime — per-point payloads large
  relative to kernel time — whereas at this model's payload (ten scalars
  per point) the scalar-pickle transport is already near-optimal: its
  grid-byte work (the per-shard ``StackedParams`` rebuilds) rides in the
  workers in parallel, while the shared-memory plane pays one serial
  parent-side pass over the grid bytes.  Every run records the measured
  speedup into ``BENCH_sweep.json`` so the trajectory stays honest;
  ``REPRO_BENCH_TRANSPORT_{POINTS,LIFETIMES,WORKERS}`` shrink the grid for
  CI's ``transport-smoke`` job.

* **Erasure checker-cycle grids** (PR 7): a 48-point share-failure-rate
  sweep of a 3-of-10 erasure scheme (monthly checker, repair below 7) at
  2000 lifetimes per point, run as one stacked grid with per-row scheme
  planes, must be at least **5x** faster than per-point sharded studies —
  the same floor the conventional kernels clear, now demonstrated on the
  periodic-repair family whose analytical face is the checker-cycle
  solver rather than a steady-state solve.  Like the conventional
  benchmark, the grid sits in the overhead-dominated regime (paper-like
  rates, few events per lifetime) where stacking is designed to pay;
  event-rich grids are kernel-bound on both paths and converge to parity.
  ``REPRO_BENCH_ERASURE_{POINTS,LIFETIMES}`` shrink the grid for CI's
  ``erasure-smoke`` job.

* **Compiled kernels** (PR 8): the same 32 x 5k single-process stacked
  grid, run with the numba-compiled row-search scans
  (``kernel=compiled``) against the numpy oracle (``kernel=numpy``), JIT
  warm-up excluded, **bit-identical batches and generator state always
  asserted** — skipped when numba is not installed.  The **5x floor** is
  an explicit opt-in (``REPRO_BENCH_COMPILED_STRICT=1``): it describes
  the search-bound regime (wide clock matrices, many rounds) on a
  multi-core host; every run records the measured speedup so the
  trajectory stays honest either way.

* **Fused event loops** (PR 9): the same 32 x 5k stacked grid, run
  through the fused whole-event-loop nopython kernel
  (``kernel=fused``) against the numpy batch oracle, JIT warm-up
  excluded — skipped when numba is not installed.  Unlike the sliced
  compiled scans, the fused loop owns its draws, so the cross-check is
  statistical (confidence-interval overlap), and the **5x floor is
  asserted by default**: with the interpreter out of the event loop
  entirely there is no regime argument left to hedge behind.

* **Thread-pool shards** (PR 8): a 64-point x 5k-lifetime grid on 4
  workers, run end-to-end (pool startup included) on the thread pool —
  workers share the materialized grid planes outright, no fork, no
  per-shard pickle — against the default process pool with its
  shared-memory transport.  Bit-identity is always asserted (the pool
  oracle); the strict floor (``REPRO_BENCH_THREAD_STRICT=1``) belongs to
  startup-dominated grids — once kernels dominate, the GIL caps the
  thread pool at numpy's released-GIL parallelism and the honest
  expectation is parity.  ``REPRO_BENCH_THREAD_{POINTS,LIFETIMES}``
  shrink the grid for CI.

* **Rare-event budget** (PR 6): a two-point failure-rate grid whose
  analytical unavailabilities sit at 1e-11 and 4e-11 — five orders of
  magnitude below what a naive estimator can resolve at any sane budget.
  Failure-biased importance sampling (``biasing=50``) plus the
  CI-width-driven stacked allocator must reach a 5e-11 half-width target
  spending at most **1 %** of the lifetime budget the naive estimator
  would need for the same target (>= **100x** variance efficiency).  The
  naive budget is derived from the analytical unavailability (exact) and
  the size-biased mean event downtime measured on the biased pilot — a
  weight-*ratio*, stable where the raw weighted second moment is not.
  ``REPRO_BENCH_RARE_{LIFETIMES,TARGET,CEILING}`` shrink or tighten the
  run for CI's ``rare-event-smoke`` job.

Run with ``pytest benchmarks/bench_sweep.py -s`` to see the measured
speedups alongside the timing records; machine-readable results land in
``BENCH_sweep.json`` (see ``benchmarks/conftest.py``), accumulated across
runs and rendered by ``python -m repro bench history``.
"""

from __future__ import annotations

import functools
import os
import time

import numpy as np
import pytest

from repro.core.evaluation import clear_template_cache, evaluate
from repro.core.montecarlo import MonteCarloConfig, run_monte_carlo, run_stacked
from repro.core.montecarlo.parallel import worker_pool
from repro.core.montecarlo.transport import shared_memory_available
from repro.core.montecarlo.simulator import simulate_conventional
from repro.core.parameters import paper_parameters
from repro.core.policies import get_policy
from repro.core.policies.base import SimulationPolicy
from repro.core.policies.stacked import stack_parameter_points
from repro.core.policies.vectorized import batch_conventional
from repro.core.sweep import sweep, sweep_per_point_rebuild
from repro.simulation.confidence import t_critical
from repro.simulation.rng import RandomStreams

#: Sweep size of the headline comparison.
N_POINTS = 1000

#: Required advantage of the template engine over per-point rebuilds.
REQUIRED_SPEEDUP = 10.0

#: Grid shape of the stacked Monte Carlo acceptance benchmark.
MC_POINTS = 32
MC_LIFETIMES = 5000

#: Required advantage of the stacked grid over per-point sharded studies.
REQUIRED_MC_SPEEDUP = 5.0

BASE = paper_parameters(disk_failure_rate=1e-6, hep=0.01)
HEP_VALUES = [float(h) for h in np.linspace(1e-4, 0.05, N_POINTS)]
RATE_VALUES = [float(r) for r in np.linspace(5e-7, 5.5e-6, N_POINTS)]


def _assert_series_match(fast, slow):
    assert len(fast) == len(slow)
    for got, want in zip(fast, slow):
        assert got.availability == pytest.approx(want.availability, abs=1e-12)


@pytest.mark.parametrize(
    ("policy", "axis", "values"),
    [
        ("conventional", "hep", HEP_VALUES),
        ("conventional", "failure_rate", RATE_VALUES),
        ("automatic_failover", "hep", HEP_VALUES),
    ],
    ids=["conventional-hep", "conventional-rate", "failover-hep"],
)
def test_template_sweep_10x_faster_than_rebuild(policy, axis, values, bench_record):
    """The PR 3 acceptance: >= 10x at 1k points, identical to 1e-12."""
    clear_template_cache()
    start = time.perf_counter()
    fast = sweep(BASE, axis, values, policy, backend="analytical")
    template_seconds = time.perf_counter() - start

    start = time.perf_counter()
    slow = sweep_per_point_rebuild(BASE, axis, values, policy)
    rebuild_seconds = time.perf_counter() - start

    speedup = rebuild_seconds / max(template_seconds, 1e-9)
    print(
        f"\n{policy}/{axis}: {N_POINTS} points — template {template_seconds:.3f}s, "
        f"rebuild {rebuild_seconds:.3f}s (speedup {speedup:.1f}x)"
    )
    bench_record(
        f"template_sweep:{policy}-{axis}",
        points=N_POINTS,
        seconds=template_seconds,
        speedup=speedup,
    )
    _assert_series_match(fast, slow)
    assert speedup >= REQUIRED_SPEEDUP, (
        f"template sweep only {speedup:.1f}x faster than per-point rebuild "
        f"(required {REQUIRED_SPEEDUP:g}x)"
    )


def _mc_grid_configs(workers: int, shard_size=None) -> "list[MonteCarloConfig]":
    """Return the 32-point hep grid of the stacked acceptance benchmark.

    The per-point baseline runs with ``shard_size=None`` — the derived
    decomposition the pre-stacked dispatch would actually use (one shard
    per worker and study).  The stacked side pins 40k-lifetime shards, its
    intended operating point: the whole 160k-row grid becomes four kernel
    invocations (still worker-count independent, as the bit-identity check
    below asserts).
    """
    heps = np.linspace(0.0, 0.05, MC_POINTS)
    return [
        MonteCarloConfig(
            params=paper_parameters(disk_failure_rate=1e-6, hep=float(hep)),
            policy="conventional",
            n_iterations=MC_LIFETIMES,
            horizon_hours=87_600.0,
            seed=2017,
            workers=workers,
            shard_size=shard_size,
        )
        for hep in heps
    ]


def test_stacked_mc_sweep_5x_faster_than_per_point(bench_record):
    """The PR 4 acceptance: >= 5x at 32 points x 5k lifetimes.

    The per-point baseline is the pre-stacked Monte Carlo sweep dispatch:
    one full independent sharded study per grid point, each paying its own
    kernel launches, shard scheduling and worker-pool lifecycle (exactly
    what ``run_monte_carlo`` does per config).  The stacked engine runs the
    same 160k lifetimes as one grid on the same worker count.  Both sides
    simulate identical iteration budgets with identical kernels; estimates
    must agree within overlapping 99 % intervals per point.
    """
    workers = 2
    stacked_shard = 40_000
    per_point_configs = _mc_grid_configs(workers)
    stacked_configs = _mc_grid_configs(workers, shard_size=stacked_shard)
    run_stacked(stacked_configs[:2])  # warm imports/pool machinery

    start = time.perf_counter()
    per_point = [run_monte_carlo(config) for config in per_point_configs]
    per_point_seconds = time.perf_counter() - start

    start = time.perf_counter()
    stacked = run_stacked(stacked_configs)
    stacked_seconds = time.perf_counter() - start

    speedup = per_point_seconds / max(stacked_seconds, 1e-9)
    print(
        f"\nstacked MC sweep: {MC_POINTS} points x {MC_LIFETIMES} lifetimes — "
        f"stacked {stacked_seconds:.3f}s, per-point {per_point_seconds:.3f}s "
        f"(speedup {speedup:.1f}x)"
    )
    bench_record(
        "stacked_mc_sweep",
        points=MC_POINTS,
        seconds=stacked_seconds,
        speedup=speedup,
        lifetimes_per_point=MC_LIFETIMES,
        workers=workers,
    )

    # Same scenarios, same iteration budgets: every point's 99 % intervals
    # must overlap between the two engines.
    for point_stacked, point_ref in zip(stacked, per_point):
        low = max(point_stacked.interval.lower, point_ref.interval.lower)
        high = min(point_stacked.interval.upper, point_ref.interval.upper)
        assert low <= high, f"intervals disagree at {point_stacked.label}"

    # The stacked decomposition is worker-count independent: workers=2 must
    # be bit-identical to workers=1, point for point.
    single = run_stacked(_mc_grid_configs(1, shard_size=stacked_shard))
    for one, two in zip(single, stacked):
        assert one.availability == two.availability
        assert one.interval.half_width == two.interval.half_width
        assert one.totals == two.totals

    assert speedup >= REQUIRED_MC_SPEEDUP, (
        f"stacked sweep only {speedup:.1f}x faster than per-point studies "
        f"(required {REQUIRED_MC_SPEEDUP:g}x)"
    )


# ----------------------------------------------------------------------
# PR 5: allocation-lean kernels and the zero-copy transport plane
# ----------------------------------------------------------------------
#: Required advantage of the compacted/arena kernel over the uncompacted
#: oracle on the single-process 32 x 5k stacked grid.
REQUIRED_COMPACTION_SPEEDUP = 1.3

#: Required advantage of the zero-copy execution plane over the legacy
#: plane in the strict (transport-bound regime) configuration.
REQUIRED_TRANSPORT_SPEEDUP = 2.0

#: Transport-grid shape; the env overrides shrink it for CI smoke runs.
TRANSPORT_POINTS = int(os.environ.get("REPRO_BENCH_TRANSPORT_POINTS", "256"))
TRANSPORT_LIFETIMES = int(os.environ.get("REPRO_BENCH_TRANSPORT_LIFETIMES", "10000"))
TRANSPORT_WORKERS = int(os.environ.get("REPRO_BENCH_TRANSPORT_WORKERS", "4"))

#: Opt-in gate for the 2x floor — meaningful only where transport, not the
#: kernels, bounds the sweep (see the module docstring).
TRANSPORT_STRICT = os.environ.get("REPRO_BENCH_TRANSPORT_STRICT") == "1"

_BATCH_FIELDS = ("downtime_hours", "du_events", "dl_events", "disk_failures", "human_errors")


def _compaction_grid():
    heps = np.linspace(0.0, 0.05, MC_POINTS)
    points = [
        paper_parameters(disk_failure_rate=1e-6, hep=float(hep)) for hep in heps
    ]
    return stack_parameter_points(points, [MC_LIFETIMES] * MC_POINTS)


def _run_kernel(grid, compact: bool):
    rng = RandomStreams(2017).stream("montecarlo")
    batch = batch_conventional(grid, 87_600.0, len(grid), rng, compact=compact)
    return batch, rng


def test_stacked_kernel_compaction_1_3x(bench_record):
    """Arena/compaction acceptance: >= 1.3x on the 32 x 5k stacked kernel.

    Single process, identical grid, identical seed: the only variable is
    the working-set discipline.  Bit-identity of the batches *and* of the
    final generator state pins that compaction changed where state lives,
    never which numbers were drawn.
    """
    grid = _compaction_grid()
    _run_kernel(grid, False), _run_kernel(grid, True)  # warm both paths
    seconds = {False: float("inf"), True: float("inf")}
    # Interleave the repetitions so ambient load drifts hit both paths
    # symmetrically instead of biasing whichever ran last.
    for _ in range(5):
        for compact in (False, True):
            start = time.perf_counter()
            _run_kernel(grid, compact)
            seconds[compact] = min(seconds[compact], time.perf_counter() - start)

    reference, rng_ref = _run_kernel(grid, False)
    compacted, rng_new = _run_kernel(grid, True)
    for field in _BATCH_FIELDS:
        assert np.array_equal(getattr(reference, field), getattr(compacted, field)), field
    assert rng_ref.bit_generator.state == rng_new.bit_generator.state

    speedup = seconds[False] / max(seconds[True], 1e-9)
    print(
        f"\nstacked kernel compaction: {MC_POINTS} points x {MC_LIFETIMES} lifetimes — "
        f"compacted {seconds[True]:.3f}s, uncompacted {seconds[False]:.3f}s "
        f"(speedup {speedup:.2f}x)"
    )
    bench_record(
        "stacked_kernel_compaction",
        points=MC_POINTS,
        seconds=seconds[True],
        speedup=speedup,
        lifetimes_per_point=MC_LIFETIMES,
    )
    assert speedup >= REQUIRED_COMPACTION_SPEEDUP, (
        f"compacted kernel only {speedup:.2f}x faster than the uncompacted "
        f"oracle (required {REQUIRED_COMPACTION_SPEEDUP:g}x)"
    )


#: The legacy execution plane: per-shard pickle rebuild feeding the
#: uncompacted kernels — exactly what ran before this PR, kept callable as
#: the transport benchmark's baseline and bit-identity oracle.
LEGACY_PLANE_POLICY = SimulationPolicy(
    name="conventional",
    description="conventional policy on the uncompacted oracle kernel",
    scalar=simulate_conventional,
    batch=functools.partial(batch_conventional, compact=False),
    supports_stacked=True,
)


def _transport_configs(policy, transport: str, n_iterations=None):
    heps = np.linspace(0.0, 0.05, TRANSPORT_POINTS)
    return [
        MonteCarloConfig(
            params=paper_parameters(disk_failure_rate=1e-6, hep=float(hep)),
            policy=policy,
            n_iterations=int(n_iterations or TRANSPORT_LIFETIMES),
            horizon_hours=87_600.0,
            seed=2017,
            workers=TRANSPORT_WORKERS,
            shard_size=40_000,
            transport=transport,
        )
        for hep in heps
    ]


def test_stacked_shm_transport(bench_record):
    """Zero-copy vs legacy execution plane: bit-identity + recorded speedup.

    The zero-copy side is today's default — parameter planes cross the
    process boundary once through shared memory, workers attach row-range
    views, kernels run compacted.  The legacy side re-pickles each shard's
    points, rebuilds its ``StackedParams`` slice from scratch and runs the
    uncompacted kernels.  Results must be bit-identical (same shard plan,
    same streams, value-identical parameter rows) — that assertion runs
    everywhere.  The >= 2x floor runs only with
    ``REPRO_BENCH_TRANSPORT_STRICT=1`` on >= 4 cores: it belongs to the
    transport-bound regime (large per-point payloads), which this model's
    ten-scalar points do not reach — there the honest expectation is
    parity, with the kernel compaction carrying the plane's advantage.
    """
    if not shared_memory_available():
        pytest.skip("POSIX shared memory is not usable on this host")
    cores = os.cpu_count() or 1
    if TRANSPORT_STRICT and cores < 4:
        pytest.skip(f"strict transport acceptance requires >= 4 cores, have {cores}")

    with worker_pool(TRANSPORT_WORKERS) as pool:
        # Warm the pool and both code paths at full size outside the timed
        # region (first-touch page faults, allocator growth, imports).
        run_stacked(_transport_configs(LEGACY_PLANE_POLICY, "pickle"), pool=pool)
        run_stacked(_transport_configs("conventional", "shm"), pool=pool)

        start = time.perf_counter()
        legacy = run_stacked(_transport_configs(LEGACY_PLANE_POLICY, "pickle"), pool=pool)
        legacy_seconds = time.perf_counter() - start

        start = time.perf_counter()
        zero_copy = run_stacked(_transport_configs("conventional", "shm"), pool=pool)
        shm_seconds = time.perf_counter() - start

    for fast, reference in zip(zero_copy, legacy):
        assert fast.availability == reference.availability
        assert fast.interval.half_width == reference.interval.half_width
        assert fast.totals == reference.totals

    speedup = legacy_seconds / max(shm_seconds, 1e-9)
    print(
        f"\nstacked shm transport: {TRANSPORT_POINTS} points x "
        f"{TRANSPORT_LIFETIMES} lifetimes, {TRANSPORT_WORKERS} workers — "
        f"zero-copy {shm_seconds:.3f}s, legacy {legacy_seconds:.3f}s "
        f"(speedup {speedup:.2f}x{', strict' if TRANSPORT_STRICT else ''})"
    )
    bench_record(
        "stacked_shm_transport",
        points=TRANSPORT_POINTS,
        seconds=shm_seconds,
        speedup=speedup,
        lifetimes_per_point=TRANSPORT_LIFETIMES,
        workers=TRANSPORT_WORKERS,
        strict=TRANSPORT_STRICT,
    )
    if TRANSPORT_STRICT:
        assert speedup >= REQUIRED_TRANSPORT_SPEEDUP, (
            f"zero-copy plane only {speedup:.2f}x faster than the legacy "
            f"plane (required {REQUIRED_TRANSPORT_SPEEDUP:g}x)"
        )


# ----------------------------------------------------------------------
# PR 8: compiled row-search kernels and the thread-pool shard executor
# ----------------------------------------------------------------------
#: Required advantage of the compiled scans over the numpy oracle in the
#: strict (search-bound regime) configuration.
REQUIRED_COMPILED_SPEEDUP = 5.0

#: Opt-in gate for the compiled floor — meaningful only where the row
#: searches, not the draws, bound the kernel (see the module docstring).
COMPILED_STRICT = os.environ.get("REPRO_BENCH_COMPILED_STRICT") == "1"

#: Thread-pool grid shape; the env overrides shrink it for CI smoke runs.
THREAD_POINTS = int(os.environ.get("REPRO_BENCH_THREAD_POINTS", "64"))
THREAD_LIFETIMES = int(os.environ.get("REPRO_BENCH_THREAD_LIFETIMES", "5000"))
THREAD_WORKERS = int(os.environ.get("REPRO_BENCH_THREAD_WORKERS", "4"))

#: Opt-in floor for the thread pool over the process pool — meaningful
#: only on startup-dominated grids (see the module docstring).
REQUIRED_THREAD_SPEEDUP = 1.2
THREAD_STRICT = os.environ.get("REPRO_BENCH_THREAD_STRICT") == "1"


def _run_kernel_backend(grid, kernel: str):
    from repro.core.montecarlo import kernel_context

    rng = RandomStreams(2017).stream("montecarlo")
    with kernel_context(kernel):
        batch = batch_conventional(grid, 87_600.0, len(grid), rng)
    return batch, rng


def test_compiled_kernel(bench_record):
    """Compiled scans vs numpy oracle: bit-identity + recorded speedup.

    Single process, identical grid, identical seed, JIT compilation
    triggered outside the timed region (``warmup_compiled``): the only
    variable is which implementation answers the row searches.  The RNG
    discipline is untouched — draws stay on the numpy ``Generator`` — so
    the batches *and* the final generator state must match bitwise.
    """
    from repro.core.montecarlo import compiled_available
    from repro.core.montecarlo.compiled import warmup_compiled

    if not compiled_available():
        pytest.skip("numba is not installed (pip install .[compiled])")
    warmup_compiled()

    grid = _compaction_grid()
    _run_kernel_backend(grid, "numpy"), _run_kernel_backend(grid, "compiled")
    seconds = {"numpy": float("inf"), "compiled": float("inf")}
    for _ in range(5):
        for kernel in ("numpy", "compiled"):
            start = time.perf_counter()
            _run_kernel_backend(grid, kernel)
            seconds[kernel] = min(seconds[kernel], time.perf_counter() - start)

    reference, rng_ref = _run_kernel_backend(grid, "numpy")
    compiled, rng_new = _run_kernel_backend(grid, "compiled")
    for field in _BATCH_FIELDS:
        assert np.array_equal(getattr(reference, field), getattr(compiled, field)), field
    assert rng_ref.bit_generator.state == rng_new.bit_generator.state

    speedup = seconds["numpy"] / max(seconds["compiled"], 1e-9)
    print(
        f"\ncompiled kernel: {MC_POINTS} points x {MC_LIFETIMES} lifetimes — "
        f"compiled {seconds['compiled']:.3f}s, numpy {seconds['numpy']:.3f}s "
        f"(speedup {speedup:.2f}x{', strict' if COMPILED_STRICT else ''})"
    )
    bench_record(
        "compiled_kernel",
        points=MC_POINTS,
        seconds=seconds["compiled"],
        speedup=speedup,
        lifetimes_per_point=MC_LIFETIMES,
        strict=COMPILED_STRICT,
    )
    if COMPILED_STRICT:
        assert speedup >= REQUIRED_COMPILED_SPEEDUP, (
            f"compiled kernels only {speedup:.2f}x faster than the numpy "
            f"oracle (required {REQUIRED_COMPILED_SPEEDUP:g}x)"
        )


#: Required advantage of the fused whole-loop kernel over the numpy
#: batch — asserted unconditionally: the fused loop removes the
#: interpreter from the event loop outright, so there is no regime in
#: which parity is the honest expectation.
REQUIRED_FUSED_SPEEDUP = 5.0


def _run_fused_side(grid, kernel: str):
    from repro.core.montecarlo import run_fused_batch
    from repro.core.policies.registry import resolve_policy

    if kernel == "fused":
        return run_fused_batch(
            resolve_policy("conventional"), grid, 87_600.0, len(grid),
            RandomStreams(2017),
        )
    rng = RandomStreams(2017).stream("montecarlo")
    return batch_conventional(grid, 87_600.0, len(grid), rng)


def test_fused_kernel(bench_record):
    """Fused whole-loop kernel vs numpy batch: CI overlap + >= 5x floor.

    Single process, identical 32 x 5k stacked grid, JIT compilation
    triggered outside the timed region (``warmup_compiled`` warms the
    fused loops too).  The fused kernel draws inside the compiled loop
    on its own named stream, so bit-identity to the numpy batch is
    impossible by design; the estimates must instead agree within the
    joint 99% confidence width.  The 5x floor is asserted on every run —
    this is the acceptance criterion the sliced compiled backend could
    only claim behind an opt-in gate.
    """
    from repro.core.montecarlo.compiled import warmup_compiled
    from repro.core.montecarlo.fused import jit_enabled

    if not jit_enabled():
        pytest.skip("numba is not installed (pip install .[compiled])")
    warmup_compiled()

    grid = _compaction_grid()
    _run_fused_side(grid, "numpy"), _run_fused_side(grid, "fused")
    seconds = {"numpy": float("inf"), "fused": float("inf")}
    for _ in range(5):
        for kernel in ("numpy", "fused"):
            start = time.perf_counter()
            _run_fused_side(grid, kernel)
            seconds[kernel] = min(seconds[kernel], time.perf_counter() - start)

    reference = _run_fused_side(grid, "numpy")
    fused = _run_fused_side(grid, "fused")
    a = 1.0 - np.asarray(fused.downtime_hours) / 87_600.0
    b = 1.0 - np.asarray(reference.downtime_hours) / 87_600.0
    joint = 2.58 * (
        a.std(ddof=1) / np.sqrt(a.size) + b.std(ddof=1) / np.sqrt(b.size)
    )
    assert abs(a.mean() - b.mean()) <= max(joint, 1e-12)

    speedup = seconds["numpy"] / max(seconds["fused"], 1e-9)
    print(
        f"\nfused kernel: {MC_POINTS} points x {MC_LIFETIMES} lifetimes — "
        f"fused {seconds['fused']:.3f}s, numpy {seconds['numpy']:.3f}s "
        f"(speedup {speedup:.2f}x)"
    )
    bench_record(
        "fused_kernel",
        points=MC_POINTS,
        seconds=seconds["fused"],
        speedup=speedup,
        lifetimes_per_point=MC_LIFETIMES,
    )
    assert speedup >= REQUIRED_FUSED_SPEEDUP, (
        f"fused event loop only {speedup:.2f}x faster than the numpy "
        f"batch (required {REQUIRED_FUSED_SPEEDUP:g}x)"
    )


def _thread_configs(pool: str):
    heps = np.linspace(0.0, 0.05, THREAD_POINTS)
    return [
        MonteCarloConfig(
            params=paper_parameters(disk_failure_rate=1e-6, hep=float(hep)),
            policy="conventional",
            n_iterations=THREAD_LIFETIMES,
            horizon_hours=87_600.0,
            seed=2017,
            workers=THREAD_WORKERS,
            shard_size=40_000,
            pool=pool,
        )
        for hep in heps
    ]


def test_thread_pool_transport(bench_record):
    """Thread pool vs process pool, end to end: bit-identity + speedup.

    Both sides run the whole grid through ``run_stacked`` with *no shared
    pool* — pool startup is part of the measurement, because that is the
    thread pool's structural advantage: no fork, no per-worker import
    replay, and the materialized grid planes are shared outright instead
    of crossing a process boundary.  The shard plan, spawn-indexed
    streams and CGL merge order are pool-independent, so the results must
    be bit-identical (the pool oracle).  The speedup is always recorded;
    the floor is opt-in (``REPRO_BENCH_THREAD_STRICT=1``) because
    kernel-bound grids converge to parity under the GIL.
    """
    run_stacked(_thread_configs("serial")[:2])  # warm kernels/imports

    start = time.perf_counter()
    process = run_stacked(_thread_configs("process"))
    process_seconds = time.perf_counter() - start

    start = time.perf_counter()
    threaded = run_stacked(_thread_configs("thread"))
    thread_seconds = time.perf_counter() - start

    for fast, reference in zip(threaded, process):
        assert fast.availability == reference.availability
        assert fast.interval.half_width == reference.interval.half_width
        assert fast.totals == reference.totals

    speedup = process_seconds / max(thread_seconds, 1e-9)
    print(
        f"\nthread pool transport: {THREAD_POINTS} points x "
        f"{THREAD_LIFETIMES} lifetimes, {THREAD_WORKERS} workers — "
        f"thread {thread_seconds:.3f}s, process {process_seconds:.3f}s "
        f"(speedup {speedup:.2f}x{', strict' if THREAD_STRICT else ''})"
    )
    bench_record(
        "thread_pool_transport",
        points=THREAD_POINTS,
        seconds=thread_seconds,
        speedup=speedup,
        lifetimes_per_point=THREAD_LIFETIMES,
        workers=THREAD_WORKERS,
        strict=THREAD_STRICT,
    )
    if THREAD_STRICT:
        assert speedup >= REQUIRED_THREAD_SPEEDUP, (
            f"thread pool only {speedup:.2f}x faster than the process pool "
            f"(required {REQUIRED_THREAD_SPEEDUP:g}x)"
        )


# ----------------------------------------------------------------------
# PR 6: importance-sampled rare-event engine + CI-width allocator
# ----------------------------------------------------------------------
#: Required variance efficiency of IS + ci_width over the naive uniform
#: budget (100x efficiency == the <= 1 % budget acceptance).
REQUIRED_RARE_EFFICIENCY = 100.0

#: Failure rates of the rare-event grid.  At ``hep=0`` their analytical
#: unavailabilities are 1e-11 and 4e-11 — both far below the 1e-7 rarity
#: gate asserted below.  The biasing factor is shared across the stacked
#: grid (a stacking invariant), so the rates are chosen where lambda * H
#: * biasing stays small enough per disk for the tilt to be healthy.
RARE_RATES = (5e-8, 1e-7)
RARE_BIASING = 50.0
RARE_RARITY_GATE = 1e-7

#: First-round size doubles as the variance-pilot size.  Rounds much
#: smaller than this undercover at these tail levels (too few weighted
#: events per round), so the smoke override should not go below ~50k.
RARE_LIFETIMES = int(os.environ.get("REPRO_BENCH_RARE_LIFETIMES", "100000"))
RARE_TARGET = float(os.environ.get("REPRO_BENCH_RARE_TARGET", "5e-11"))
RARE_CEILING = int(os.environ.get("REPRO_BENCH_RARE_CEILING", "4000000"))


def _rare_configs():
    return [
        MonteCarloConfig(
            params=paper_parameters(disk_failure_rate=rate, hep=0.0),
            policy="conventional",
            n_iterations=RARE_LIFETIMES,
            horizon_hours=87_600.0,
            seed=2017,
            biasing=RARE_BIASING,
            target_half_width=RARE_TARGET,
            max_iterations=RARE_CEILING,
            allocator="ci_width",
        )
        for rate in RARE_RATES
    ]


def test_rare_event_budget(bench_record):
    """The PR 6 acceptance: >= 100x variance efficiency on the rare grid.

    The naive (unbiased, uniform-allocation) budget for a ``target``
    half-width is ``(z / target)^2 * var_naive`` lifetimes per point.  At
    unavailabilities of 1e-11 a naive run cannot even *measure* its own
    variance, so the benchmark derives it exactly from the decomposition
    ``var_naive = U * m - U^2``: ``U`` is the analytical unavailability
    (exact — the same dual-face reference the estimator is validated
    against) and ``m`` is the size-biased mean event downtime fraction,
    estimated from the biased pilot as the weight ratio
    ``sum(w u^2) / sum(w u)`` over event lifetimes.  The ratio shares its
    extreme weights between numerator and denominator, making it stable
    across seeds where the raw weighted second moment is not.

    The importance-sampled side then actually runs: the stacked ci_width
    allocator spends first rounds everywhere and routes every further
    lifetime to whichever point's merged interval is still too wide.  Its
    total spend must come in at <= 1 % of the naive budget, and every
    point's final interval must cover the analytical truth.
    """
    z = t_critical(0.99, 1_000_000)
    uniform_budget = 0.0
    references = []
    for rate in RARE_RATES:
        params = paper_parameters(disk_failure_rate=rate, hep=0.0)
        unavailability = evaluate(
            params, policy="conventional", backend="analytical"
        ).unavailability
        assert unavailability <= RARE_RARITY_GATE, (
            f"lambda={rate:g} is not a rare-event scenario "
            f"(analytical unavailability {unavailability:.2e})"
        )
        references.append(unavailability)
        rng = RandomStreams(2017).stream("montecarlo")
        pilot = get_policy("conventional").simulate_batch(
            params, 87_600.0, RARE_LIFETIMES, rng, biasing=RARE_BIASING
        )
        weights = pilot.weights()
        downtime_fraction = 1.0 - pilot.availabilities()
        events = downtime_fraction > 0.0
        assert events.any(), f"biased pilot saw no events at lambda={rate:g}"
        size_biased_mean = float(
            np.sum(weights[events] * downtime_fraction[events] ** 2)
            / np.sum(weights[events] * downtime_fraction[events])
        )
        var_naive = unavailability * size_biased_mean - unavailability**2
        uniform_budget += (z / RARE_TARGET) ** 2 * var_naive

    run_stacked(_rare_configs()[:1])  # warm kernels outside the timed region

    start = time.perf_counter()
    results = run_stacked(_rare_configs())
    seconds = time.perf_counter() - start

    spent = sum(point.n_iterations for point in results)
    efficiency = uniform_budget / spent
    print(
        f"\nrare-event budget: {len(RARE_RATES)} points, target {RARE_TARGET:g} — "
        f"IS+ci_width spent {spent} lifetimes in {seconds:.3f}s, naive budget "
        f"{uniform_budget:.3e} (variance efficiency {efficiency:.0f}x)"
    )
    bench_record(
        "rare_event_budget",
        points=len(RARE_RATES),
        seconds=seconds,
        variance_efficiency=efficiency,
        lifetimes_spent=spent,
        uniform_budget=uniform_budget,
        biasing=RARE_BIASING,
        target_half_width=RARE_TARGET,
    )

    for point, reference in zip(results, references):
        assert point.n_iterations <= RARE_CEILING
        covered = (
            point.interval.lower <= 1.0 - reference <= point.interval.upper
        )
        assert covered, (
            f"{point.label}: interval misses the analytical reference "
            f"{reference:.3e} (estimate {point.unavailability:.3e} "
            f"+/- {point.interval.half_width:.2e})"
        )
        assert point.interval.half_width <= RARE_TARGET, (
            f"{point.label}: allocator stopped above the target half-width"
        )
    assert efficiency >= REQUIRED_RARE_EFFICIENCY, (
        f"importance-sampled budget is {100 / efficiency:.1f}% of the naive "
        f"budget (required <= 1 %, i.e. >= {REQUIRED_RARE_EFFICIENCY:g}x "
        "variance efficiency)"
    )


# ----------------------------------------------------------------------
# PR 7: erasure checker-cycle grids on the stacked engine
# ----------------------------------------------------------------------
#: Grid shape of the erasure stacked acceptance benchmark; the env
#: overrides shrink it for CI's erasure-smoke job.
ERASURE_POINTS = int(os.environ.get("REPRO_BENCH_ERASURE_POINTS", "48"))
ERASURE_LIFETIMES = int(os.environ.get("REPRO_BENCH_ERASURE_LIFETIMES", "2000"))


def _erasure_grid_configs(workers: int, shard_size=None) -> "list[MonteCarloConfig]":
    from repro.storage.raid import RaidGeometry

    rates = np.linspace(1e-6, 1e-5, ERASURE_POINTS)
    return [
        MonteCarloConfig(
            params=paper_parameters(
                geometry=RaidGeometry.erasure(3, 10),
                disk_failure_rate=float(rate),
                hep=0.1,
            ),
            policy=get_policy("erasure"),
            n_iterations=ERASURE_LIFETIMES,
            horizon_hours=87_600.0,
            seed=2017,
            workers=workers,
            shard_size=shard_size,
        )
        for rate in rates
    ]


def test_stacked_erasure_sweep_5x_faster_than_per_point(bench_record):
    """The PR 7 acceptance: >= 5x on a k-of-N checker-cycle grid.

    Same contract as the conventional-kernel benchmark above, on the
    periodic-repair family: the per-point baseline runs one independent
    sharded study per failure rate, the stacked side rides the per-row
    scheme planes through a handful of ``batch_erasure`` invocations.
    Estimates must agree within overlapping 99 % intervals per point, and
    the stacked decomposition stays worker-count independent.
    """
    workers = 2
    stacked_shard = 40_000
    per_point_configs = _erasure_grid_configs(workers)
    stacked_configs = _erasure_grid_configs(workers, shard_size=stacked_shard)
    run_stacked(stacked_configs[:2])  # warm imports/pool machinery

    start = time.perf_counter()
    per_point = [run_monte_carlo(config) for config in per_point_configs]
    per_point_seconds = time.perf_counter() - start

    start = time.perf_counter()
    stacked = run_stacked(stacked_configs)
    stacked_seconds = time.perf_counter() - start

    speedup = per_point_seconds / max(stacked_seconds, 1e-9)
    print(
        f"\nstacked erasure sweep: {ERASURE_POINTS} points x "
        f"{ERASURE_LIFETIMES} lifetimes — stacked {stacked_seconds:.3f}s, "
        f"per-point {per_point_seconds:.3f}s (speedup {speedup:.1f}x)"
    )
    bench_record(
        "stacked_erasure_sweep",
        points=ERASURE_POINTS,
        seconds=stacked_seconds,
        speedup=speedup,
        lifetimes_per_point=ERASURE_LIFETIMES,
        workers=workers,
    )

    for point_stacked, point_ref in zip(stacked, per_point):
        low = max(point_stacked.interval.lower, point_ref.interval.lower)
        high = min(point_stacked.interval.upper, point_ref.interval.upper)
        assert low <= high, f"intervals disagree at {point_stacked.label}"

    single = run_stacked(_erasure_grid_configs(1, shard_size=stacked_shard))
    for one, two in zip(single, stacked):
        assert one.availability == two.availability
        assert one.totals == two.totals

    assert speedup >= REQUIRED_MC_SPEEDUP, (
        f"stacked erasure sweep only {speedup:.1f}x faster than per-point "
        f"studies (required {REQUIRED_MC_SPEEDUP:g}x)"
    )


def test_template_sweep_bench(benchmark):
    """Timing record: 1k-point hep sweep on the warmed template engine."""
    sweep(BASE, "hep", HEP_VALUES[:10], "conventional")  # warm the cache
    points = benchmark(sweep, BASE, "hep", HEP_VALUES, "conventional")
    assert len(points) == N_POINTS


def test_per_point_rebuild_bench(benchmark):
    """Timing record: the retired per-point path at a tenth of the size."""
    points = benchmark(
        sweep_per_point_rebuild, BASE, "hep", HEP_VALUES[:100], "conventional"
    )
    assert len(points) == 100


def test_fault_recovery_overhead(bench_record, tmp_path):
    """Chaos record: crash-retry and kill-and-resume overhead of a sweep.

    A small stacked grid runs three ways: clean, with one injected shard
    crash (retried in place), and interrupted after two shards then resumed
    from its journal.  All three must be bit-identical — the whole point of
    deriving shard streams from ``(master_entropy, shard_index)`` — and the
    recovery overhead plus the retry/resume counters land in
    ``BENCH_sweep.json`` so ``bench history`` shows the fault-tolerance
    trajectory next to the raw speedups.
    """
    from repro.core.montecarlo import FaultPlan, fault_plan

    def grid(checkpoint=None, resume=None):
        heps = np.linspace(0.0, 0.05, 8)
        return [
            MonteCarloConfig(
                params=paper_parameters(disk_failure_rate=1e-6, hep=float(hep)),
                policy="conventional",
                n_iterations=2000,
                horizon_hours=87_600.0,
                seed=2017,
                shard_size=4000,
                max_shard_retries=2,
                retry_backoff=0.0,
                checkpoint=checkpoint,
                resume=resume,
            )
            for hep in heps
        ]

    start = time.perf_counter()
    clean = run_stacked(grid())
    clean_seconds = time.perf_counter() - start

    with fault_plan(FaultPlan.single(0, "raise"), tmp_path / "crash"):
        start = time.perf_counter()
        crashed = run_stacked(grid())
        crash_seconds = time.perf_counter() - start

    journal = str(tmp_path / "sweep.journal")
    with fault_plan(FaultPlan(abort_after=2), tmp_path / "abort"):
        interrupted = run_stacked(grid(checkpoint=journal))
    assert any(point.interrupted for point in interrupted)
    start = time.perf_counter()
    resumed = run_stacked(grid(resume=journal))
    resume_seconds = time.perf_counter() - start

    assert sum(point.retried_shards for point in crashed) >= 1
    assert sum(point.resumed_shards for point in resumed) >= 2
    for reference, other in ((clean, crashed), (clean, resumed)):
        for a, b in zip(reference, other):
            assert a.availability == b.availability
            assert a.totals == b.totals

    print(
        f"\nfault recovery: clean {clean_seconds:.3f}s, crash-retry "
        f"{crash_seconds:.3f}s, resume {resume_seconds:.3f}s"
    )
    bench_record(
        "fault_recovery",
        points=8,
        seconds=crash_seconds,
        speedup=clean_seconds / max(crash_seconds, 1e-9),
        lifetimes_per_point=2000,
        retried_shards=int(sum(point.retried_shards for point in crashed)),
        resumed_shards=int(sum(point.resumed_shards for point in resumed)),
    )
