"""Engine benchmarks: the sweep engines against their per-point ancestors.

Two acceptance criteria live here:

* **Analytical** (PR 3): at 1000 sweep points the template-driven sweep
  (build the chain once, rewrite only the affected generator entries,
  re-factorize) must be at least **10x** faster than the retired per-point
  path that reconstructs builder, chain, validation and solver objects for
  every point — while producing the same series to 1e-12.
* **Monte Carlo stacked grids** (PR 4): a 32-point sweep at 5000 lifetimes
  per point, run as one stacked grid (per-lifetime parameter arrays, a
  handful of kernel invocations for the whole grid, segmented per-point
  aggregation), must be at least **5x** faster than the per-point path it
  replaces — one full independent sharded study per value, each paying its
  own kernel launches, shard scheduling and executor lifecycle.  The
  stacked decomposition is worker-count independent, so the same benchmark
  asserts that ``workers=2`` results are bit-identical to ``workers=1``.

Run with ``pytest benchmarks/bench_sweep.py -s`` to see the measured
speedups alongside the timing records; machine-readable results land in
``BENCH_sweep.json`` (see ``benchmarks/conftest.py``).
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.core.evaluation import clear_template_cache
from repro.core.montecarlo import MonteCarloConfig, run_monte_carlo, run_stacked
from repro.core.parameters import paper_parameters
from repro.core.sweep import sweep, sweep_per_point_rebuild

#: Sweep size of the headline comparison.
N_POINTS = 1000

#: Required advantage of the template engine over per-point rebuilds.
REQUIRED_SPEEDUP = 10.0

#: Grid shape of the stacked Monte Carlo acceptance benchmark.
MC_POINTS = 32
MC_LIFETIMES = 5000

#: Required advantage of the stacked grid over per-point sharded studies.
REQUIRED_MC_SPEEDUP = 5.0

BASE = paper_parameters(disk_failure_rate=1e-6, hep=0.01)
HEP_VALUES = [float(h) for h in np.linspace(1e-4, 0.05, N_POINTS)]
RATE_VALUES = [float(r) for r in np.linspace(5e-7, 5.5e-6, N_POINTS)]


def _assert_series_match(fast, slow):
    assert len(fast) == len(slow)
    for got, want in zip(fast, slow):
        assert got.availability == pytest.approx(want.availability, abs=1e-12)


@pytest.mark.parametrize(
    ("policy", "axis", "values"),
    [
        ("conventional", "hep", HEP_VALUES),
        ("conventional", "failure_rate", RATE_VALUES),
        ("automatic_failover", "hep", HEP_VALUES),
    ],
    ids=["conventional-hep", "conventional-rate", "failover-hep"],
)
def test_template_sweep_10x_faster_than_rebuild(policy, axis, values, bench_record):
    """The PR 3 acceptance: >= 10x at 1k points, identical to 1e-12."""
    clear_template_cache()
    start = time.perf_counter()
    fast = sweep(BASE, axis, values, policy, backend="analytical")
    template_seconds = time.perf_counter() - start

    start = time.perf_counter()
    slow = sweep_per_point_rebuild(BASE, axis, values, policy)
    rebuild_seconds = time.perf_counter() - start

    speedup = rebuild_seconds / max(template_seconds, 1e-9)
    print(
        f"\n{policy}/{axis}: {N_POINTS} points — template {template_seconds:.3f}s, "
        f"rebuild {rebuild_seconds:.3f}s (speedup {speedup:.1f}x)"
    )
    bench_record(
        f"template_sweep:{policy}-{axis}",
        points=N_POINTS,
        seconds=template_seconds,
        speedup=speedup,
    )
    _assert_series_match(fast, slow)
    assert speedup >= REQUIRED_SPEEDUP, (
        f"template sweep only {speedup:.1f}x faster than per-point rebuild "
        f"(required {REQUIRED_SPEEDUP:g}x)"
    )


def _mc_grid_configs(workers: int, shard_size=None) -> "list[MonteCarloConfig]":
    """Return the 32-point hep grid of the stacked acceptance benchmark.

    The per-point baseline runs with ``shard_size=None`` — the derived
    decomposition the pre-stacked dispatch would actually use (one shard
    per worker and study).  The stacked side pins 40k-lifetime shards, its
    intended operating point: the whole 160k-row grid becomes four kernel
    invocations (still worker-count independent, as the bit-identity check
    below asserts).
    """
    heps = np.linspace(0.0, 0.05, MC_POINTS)
    return [
        MonteCarloConfig(
            params=paper_parameters(disk_failure_rate=1e-6, hep=float(hep)),
            policy="conventional",
            n_iterations=MC_LIFETIMES,
            horizon_hours=87_600.0,
            seed=2017,
            workers=workers,
            shard_size=shard_size,
        )
        for hep in heps
    ]


def test_stacked_mc_sweep_5x_faster_than_per_point(bench_record):
    """The PR 4 acceptance: >= 5x at 32 points x 5k lifetimes.

    The per-point baseline is the pre-stacked Monte Carlo sweep dispatch:
    one full independent sharded study per grid point, each paying its own
    kernel launches, shard scheduling and worker-pool lifecycle (exactly
    what ``run_monte_carlo`` does per config).  The stacked engine runs the
    same 160k lifetimes as one grid on the same worker count.  Both sides
    simulate identical iteration budgets with identical kernels; estimates
    must agree within overlapping 99 % intervals per point.
    """
    workers = 2
    stacked_shard = 40_000
    per_point_configs = _mc_grid_configs(workers)
    stacked_configs = _mc_grid_configs(workers, shard_size=stacked_shard)
    run_stacked(stacked_configs[:2])  # warm imports/pool machinery

    start = time.perf_counter()
    per_point = [run_monte_carlo(config) for config in per_point_configs]
    per_point_seconds = time.perf_counter() - start

    start = time.perf_counter()
    stacked = run_stacked(stacked_configs)
    stacked_seconds = time.perf_counter() - start

    speedup = per_point_seconds / max(stacked_seconds, 1e-9)
    print(
        f"\nstacked MC sweep: {MC_POINTS} points x {MC_LIFETIMES} lifetimes — "
        f"stacked {stacked_seconds:.3f}s, per-point {per_point_seconds:.3f}s "
        f"(speedup {speedup:.1f}x)"
    )
    bench_record(
        "stacked_mc_sweep",
        points=MC_POINTS,
        seconds=stacked_seconds,
        speedup=speedup,
        lifetimes_per_point=MC_LIFETIMES,
        workers=workers,
    )

    # Same scenarios, same iteration budgets: every point's 99 % intervals
    # must overlap between the two engines.
    for point_stacked, point_ref in zip(stacked, per_point):
        low = max(point_stacked.interval.lower, point_ref.interval.lower)
        high = min(point_stacked.interval.upper, point_ref.interval.upper)
        assert low <= high, f"intervals disagree at {point_stacked.label}"

    # The stacked decomposition is worker-count independent: workers=2 must
    # be bit-identical to workers=1, point for point.
    single = run_stacked(_mc_grid_configs(1, shard_size=stacked_shard))
    for one, two in zip(single, stacked):
        assert one.availability == two.availability
        assert one.interval.half_width == two.interval.half_width
        assert one.totals == two.totals

    assert speedup >= REQUIRED_MC_SPEEDUP, (
        f"stacked sweep only {speedup:.1f}x faster than per-point studies "
        f"(required {REQUIRED_MC_SPEEDUP:g}x)"
    )


def test_template_sweep_bench(benchmark):
    """Timing record: 1k-point hep sweep on the warmed template engine."""
    sweep(BASE, "hep", HEP_VALUES[:10], "conventional")  # warm the cache
    points = benchmark(sweep, BASE, "hep", HEP_VALUES, "conventional")
    assert len(points) == N_POINTS


def test_per_point_rebuild_bench(benchmark):
    """Timing record: the retired per-point path at a tenth of the size."""
    points = benchmark(
        sweep_per_point_rebuild, BASE, "hep", HEP_VALUES[:100], "conventional"
    )
    assert len(points) == 100
