"""Engine benchmark: parameterized-template sweep vs per-point rebuild.

The sweep engine's acceptance criterion: at 1000 sweep points the
template-driven analytical sweep (build the chain once, rewrite only the
affected generator entries, re-factorize) must be at least **10x** faster
than the retired per-point path that reconstructs builder, chain, validation
and solver objects for every point — while producing the same series to
1e-12.

Run with ``pytest benchmarks/bench_sweep.py -s`` to see the measured
speedups alongside the timing records.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.core.evaluation import clear_template_cache
from repro.core.parameters import paper_parameters
from repro.core.sweep import sweep, sweep_per_point_rebuild

#: Sweep size of the headline comparison.
N_POINTS = 1000

#: Required advantage of the template engine over per-point rebuilds.
REQUIRED_SPEEDUP = 10.0

BASE = paper_parameters(disk_failure_rate=1e-6, hep=0.01)
HEP_VALUES = [float(h) for h in np.linspace(1e-4, 0.05, N_POINTS)]
RATE_VALUES = [float(r) for r in np.linspace(5e-7, 5.5e-6, N_POINTS)]


def _assert_series_match(fast, slow):
    assert len(fast) == len(slow)
    for got, want in zip(fast, slow):
        assert got.availability == pytest.approx(want.availability, abs=1e-12)


@pytest.mark.parametrize(
    ("policy", "axis", "values"),
    [
        ("conventional", "hep", HEP_VALUES),
        ("conventional", "failure_rate", RATE_VALUES),
        ("automatic_failover", "hep", HEP_VALUES),
    ],
    ids=["conventional-hep", "conventional-rate", "failover-hep"],
)
def test_template_sweep_10x_faster_than_rebuild(policy, axis, values):
    """The tentpole acceptance: >= 10x at 1k points, identical to 1e-12."""
    clear_template_cache()
    start = time.perf_counter()
    fast = sweep(BASE, axis, values, policy, backend="analytical")
    template_seconds = time.perf_counter() - start

    start = time.perf_counter()
    slow = sweep_per_point_rebuild(BASE, axis, values, policy)
    rebuild_seconds = time.perf_counter() - start

    speedup = rebuild_seconds / max(template_seconds, 1e-9)
    print(
        f"\n{policy}/{axis}: {N_POINTS} points — template {template_seconds:.3f}s, "
        f"rebuild {rebuild_seconds:.3f}s (speedup {speedup:.1f}x)"
    )
    _assert_series_match(fast, slow)
    assert speedup >= REQUIRED_SPEEDUP, (
        f"template sweep only {speedup:.1f}x faster than per-point rebuild "
        f"(required {REQUIRED_SPEEDUP:g}x)"
    )


def test_template_sweep_bench(benchmark):
    """Timing record: 1k-point hep sweep on the warmed template engine."""
    sweep(BASE, "hep", HEP_VALUES[:10], "conventional")  # warm the cache
    points = benchmark(sweep, BASE, "hep", HEP_VALUES, "conventional")
    assert len(points) == N_POINTS


def test_per_point_rebuild_bench(benchmark):
    """Timing record: the retired per-point path at a tenth of the size."""
    points = benchmark(
        sweep_per_point_rebuild, BASE, "hep", HEP_VALUES[:100], "conventional"
    )
    assert len(points) == 100
