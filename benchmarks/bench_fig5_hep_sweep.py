"""EXP-F5 — regenerate Fig. 5: RAID5(3+1) availability versus hep.

Paper series: one curve per field disk failure rate (with its Weibull
shape), availability in nines against ``hep ∈ {0, 0.001, 0.01}``.
"""

from __future__ import annotations

from repro.experiments.fig5_hep_sweep import availability_drops, fig5_table, run_fig5_sweep


def test_fig5_hep_sweep_bench(benchmark):
    """Time the analytical Fig. 5 sweep and print the reproduced series."""
    series = benchmark(run_fig5_sweep)
    print()
    print(fig5_table(series).render(float_format="{:.3f}"))
    drops = availability_drops(series)
    print("nines lost from hep=0 to hep=0.01 per curve:")
    for label, drop in drops.items():
        print(f"  {label}: {drop:.2f}")
    # Shape checks mirroring the paper's reading of the figure.
    for entry in series:
        assert entry.markov_nines[0] >= entry.markov_nines[1] >= entry.markov_nines[2]
    ordered = sorted(series, key=lambda s: s.disk_failure_rate)
    assert ordered[0].markov_nines[0] > ordered[-1].markov_nines[0]


def test_fig5_with_weibull_monte_carlo_bench(benchmark, bench_mc_iterations, bench_seed):
    """Time the Monte Carlo (Weibull) variant of Fig. 5 on a reduced grid."""
    series = benchmark.pedantic(
        run_fig5_sweep,
        kwargs={
            "hep_values": (0.0, 0.01),
            "field_rates": ((2.00e-5, 1.48),),
            "include_monte_carlo": True,
            "mc_iterations": bench_mc_iterations,
            "seed": bench_seed,
        },
        iterations=1,
        rounds=1,
    )
    entry = series[0]
    print()
    print(f"Weibull MC series for {entry.label}: nines by hep {entry.hep_values} = {entry.mc_nines}")
    assert entry.mc_nines is not None and len(entry.mc_nines) == 2
