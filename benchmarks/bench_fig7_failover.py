"""EXP-F7 — regenerate Fig. 7: conventional versus automatic fail-over policy.

Paper series: availability (nines) of the two replacement policies for
``hep ∈ {0, 0.001, 0.01}`` on a RAID5(3+1) array; the delayed-replacement
policy's advantage grows with hep.
"""

from __future__ import annotations

from repro.experiments.fig7_failover import (
    fig7_table,
    improvement_by_hep,
    run_fig7_comparison,
)


def test_fig7_failover_bench(benchmark):
    """Time the policy comparison and print the reproduced series."""
    points = benchmark(run_fig7_comparison)
    print()
    print(fig7_table(points).render(float_format="{:.3f}"))
    improvements = improvement_by_hep(points)
    print("unavailability improvement (conventional / fail-over):")
    for hep, factor in improvements.items():
        print(f"  hep={hep:g}: {factor:.1f}x")
    # Shape checks mirroring the paper's reading of the figure.
    assert improvements[0.0] == 1.0 or abs(improvements[0.0] - 1.0) < 0.05
    assert improvements[0.001] > 1.0
    assert improvements[0.01] > improvements[0.001]
    for point in points:
        assert point.failover_nines >= point.conventional_nines - 1e-9
