"""EXP-F4 — regenerate Fig. 4: Markov vs Monte Carlo validation.

Paper series: availability (nines) versus disk failure rate for
``hep = 0.001`` and ``hep = 0.01``; the Markov curve must track the Monte
Carlo estimate.  The benchmark prints the table and times one full grid
evaluation at reduced Monte Carlo depth.
"""

from __future__ import annotations

from repro.experiments.fig4_validation import (
    agreement_fraction,
    fig4_table,
    run_fig4_validation,
)

#: Reduced failure-rate grid (the paper sweeps 0 ... 5.5e-6 with more points).
BENCH_FAILURE_RATES = (1e-6, 2.5e-6, 4e-6, 5.5e-6)


def _run(iterations: int, horizon: float, seed: int):
    return run_fig4_validation(
        failure_rates=BENCH_FAILURE_RATES,
        hep_values=(0.001, 0.01),
        mc_iterations=iterations,
        mc_horizon_hours=horizon,
        seed=seed,
    )


def test_fig4_validation_bench(benchmark, bench_mc_iterations, bench_mc_horizon, bench_seed):
    """Time the Fig. 4 grid and print the reproduced series."""
    points = benchmark.pedantic(
        _run,
        args=(bench_mc_iterations, bench_mc_horizon, bench_seed),
        iterations=1,
        rounds=1,
    )
    table = fig4_table(points)
    table.add_note(
        f"benchmark ran {bench_mc_iterations} MC iterations per point "
        "(paper: 1e6; widen iterations to tighten the interval)"
    )
    print()
    print(table.render(float_format="{:.4g}"))
    print(f"Markov-inside-MC-interval fraction: {agreement_fraction(points):.2f}")
    # Shape check: availability decreases as the failure rate grows, for both
    # the analytical and the simulated series.
    for hep in (0.001, 0.01):
        markov = [p.markov_nines for p in points if p.hep == hep]
        assert markov == sorted(markov, reverse=True)
