"""EXP-F6 — regenerate Fig. 6: RAID configurations at equal usable capacity.

Paper series: three subplots (disk failure rate 1e-5, 1e-6, 1e-7), each
plotting availability (nines) of RAID1(1+1), RAID5(3+1) and RAID5(7+1)
against ``hep ∈ {0, 0.001, 0.01}`` at equal usable capacity.
"""

from __future__ import annotations

from repro.experiments.fig6_raid_comparison import (
    fig6_tables,
    raid1_loses_lead,
    rankings_by_point,
    run_fig6_comparison,
)


def test_fig6_raid_comparison_bench(benchmark):
    """Time the full Fig. 6 grid and print the three sub-tables."""
    cells = benchmark(run_fig6_comparison)
    print()
    for table in fig6_tables(cells):
        print(table.render(float_format="{:.3f}"))
        print()
    rankings = rankings_by_point(cells)
    print("availability ranking per grid point:")
    for point, order in rankings.items():
        print(f"  {point}: {' > '.join(order)}")
    # Paper's reading of the figure: the mirror leads without human error and
    # loses its lead once human errors are modelled (at the lower rates).
    assert not raid1_loses_lead(cells, 1e-5, 0.0)
    assert not raid1_loses_lead(cells, 1e-6, 0.0)
    assert raid1_loses_lead(cells, 1e-6, 0.01)
    assert raid1_loses_lead(cells, 1e-7, 0.01)
