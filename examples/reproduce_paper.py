"""Regenerate every figure and headline number of the paper in one run.

Runs EXP-F4 ... EXP-F7 and the underestimation headline through
:func:`repro.experiments.run_all_experiments` and prints the resulting
tables.  The Monte Carlo iteration count is configurable; the default here
(8000) keeps the run to a couple of minutes, while ``--full`` switches to a
paper-scale setting (much slower).

Run with::

    python examples/reproduce_paper.py            # quick pass
    python examples/reproduce_paper.py --full     # closer to the paper's 1e6
    python examples/reproduce_paper.py --no-mc    # analytical figures only
"""

from __future__ import annotations

import argparse

from repro.experiments import run_all_experiments


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--full",
        action="store_true",
        help="use a paper-scale Monte Carlo iteration count (slow)",
    )
    parser.add_argument(
        "--no-mc",
        action="store_true",
        help="skip the Monte Carlo validation (Fig. 4) and print only analytical results",
    )
    parser.add_argument(
        "--iterations",
        type=int,
        default=None,
        help="override the Monte Carlo iteration count explicitly",
    )
    args = parser.parse_args()

    if args.iterations is not None:
        iterations = args.iterations
    elif args.full:
        iterations = 200_000
    else:
        iterations = 8_000

    report = run_all_experiments(
        mc_iterations=iterations,
        include_monte_carlo=not args.no_mc,
    )
    print(report.render())


if __name__ == "__main__":
    main()
