"""Reproduce the paper's Fig. 1: a single Monte Carlo run, event by event.

Fig. 1 of the paper illustrates one simulated lifetime of a RAID5(3+1)
array: disk failures, rebuilds, two wrong disk replacements (data
unavailability) and two double disk failures (data loss followed by tape
recovery).  This script generates an equivalent trace with the library's
event-driven simulator and prints it as a timeline, flagging the events that
cost downtime.

Run with::

    python examples/mc_event_trace.py
"""

from __future__ import annotations

from dataclasses import replace

from repro.core.montecarlo.trace import (
    generate_example_trace,
    render_timeline,
    summarise_trace,
)
from repro.core.parameters import paper_parameters
from repro.storage.raid import RaidGeometry


def main() -> None:
    # Exaggerated rates so the 1000-hour window shown actually contains
    # failures and errors, exactly like the paper's illustrative figure
    # (which compresses events into a ~900-hour strip).
    scenario = replace(
        paper_parameters(geometry=RaidGeometry.raid5(3)),
        disk_failure_rate=2e-3,   # one failure every ~500 disk-hours
        hep=0.1,                  # one in ten replacements goes wrong
    )
    trace = generate_example_trace(params=scenario, horizon_hours=1000.0, seed=11)

    print("Single Monte Carlo run of a RAID5(3+1) array (illustrative rates)")
    print("events marked ** interrupt data availability\n")
    print(render_timeline(trace))
    print()
    summary = summarise_trace(trace)
    print("summary:", ", ".join(f"{key}={value}" for key, value in summary.items()))


if __name__ == "__main__":
    main()
