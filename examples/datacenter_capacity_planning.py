"""Capacity-planning study: which RAID layout should a data centre buy?

The scenario from the paper's Fig. 6: a storage administrator must provide a
fixed usable capacity and chooses between mirroring (RAID1 1+1) and parity
groups (RAID5 3+1 or 7+1).  Conventional wisdom says the mirror is the most
available; this script shows how the ranking changes once wrong-disk
replacements by operators are part of the model, and reports the fleet-level
consequences (physical disks bought, expected disk failures per year,
expected operator interventions and human errors per year).

Run with::

    python examples/datacenter_capacity_planning.py
"""

from __future__ import annotations

from repro import compare_equal_capacity, paper_parameters
from repro.availability import Table
from repro.human import expected_errors_per_year
from repro.storage import DiskSubsystem, RaidGeometry

#: Usable capacity to provision, in units of one disk (e.g. 840 x 4 TB disks
#: of logical capacity).  Divisible by 1, 3 and 7 so the comparison is exact.
USABLE_DISKS = 840

#: Disk failure rate per hour (about 0.9% AFR).
FAILURE_RATE = 1e-6


def fleet_table(hep: float) -> Table:
    """Return the comparison table for one human error probability."""
    base = paper_parameters(disk_failure_rate=FAILURE_RATE, hep=hep)
    model = "baseline" if hep == 0.0 else "conventional"
    comparisons = compare_equal_capacity(
        base,
        geometries=[RaidGeometry.raid1(2), RaidGeometry.raid5(3), RaidGeometry.raid5(7)],
        usable_disks=USABLE_DISKS,
        model=model,
    )
    table = Table(
        title=f"Usable capacity = {USABLE_DISKS} disks, lambda = {FAILURE_RATE:g}/h, hep = {hep:g}",
        columns=[
            "configuration",
            "groups",
            "physical_disks",
            "ERF",
            "subsystem_nines",
            "downtime_h_per_year",
            "disk_failures_per_year",
            "human_errors_per_year",
        ],
    )
    for entry in comparisons:
        subsystem = DiskSubsystem.for_usable_capacity(
            RaidGeometry.from_label(entry.geometry_label), USABLE_DISKS
        )
        failures_per_year = subsystem.expected_disk_failures_per_year(FAILURE_RATE)
        table.add_row(
            configuration=entry.geometry_label,
            groups=entry.n_arrays,
            physical_disks=entry.total_disks,
            ERF=entry.erf,
            subsystem_nines=entry.subsystem_nines,
            downtime_h_per_year=entry.downtime_hours_per_year,
            disk_failures_per_year=failures_per_year,
            human_errors_per_year=expected_errors_per_year(hep, failures_per_year),
        )
    return table


def main() -> None:
    for hep in (0.0, 0.001, 0.01):
        print(fleet_table(hep).render(float_format="{:.3f}"))
        print()
    print(
        "Reading: at hep=0 the mirror (RAID1) is the most available layout; with\n"
        "realistic human error probabilities its higher Effective Replication\n"
        "Factor means ~75% more disks, more replacements, more wrong pulls — and\n"
        "its availability advantage shrinks or inverts, as the paper reports."
    )


if __name__ == "__main__":
    main()
