"""Quickstart: how much availability does human error cost a RAID5 array?

Runs the paper's three models (traditional hep-free, conventional
replacement with human error, automatic fail-over) on a RAID5(3+1) array at
the paper's default rates and prints the availability in nines, the downtime
per year and the underestimation factor of the traditional model.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import analytical_result, paper_parameters
from repro.availability import downtime_minutes_per_year
from repro.core.underestimation import underestimation_factor


def main() -> None:
    failure_rate = 1e-6  # one failure per ~114 disk-years
    print("RAID5(3+1), disk failure rate 1e-6/h, paper repair rates\n")
    print(f"{'model':<34}{'hep':>8}{'nines':>9}{'downtime/yr':>16}")
    print("-" * 67)

    rows = [
        ("traditional (human error ignored)", 0.0, "baseline"),
        ("conventional replacement", 0.001, "conventional"),
        ("conventional replacement", 0.01, "conventional"),
        ("automatic fail-over", 0.001, "automatic_failover"),
        ("automatic fail-over", 0.01, "automatic_failover"),
    ]
    for label, hep, policy in rows:
        params = paper_parameters(disk_failure_rate=failure_rate, hep=hep)
        result = analytical_result(params, policy)
        minutes = downtime_minutes_per_year(result.availability)
        print(f"{label:<34}{hep:>8g}{result.nines:>9.2f}{minutes:>13.3f} min")

    print()
    for hep in (0.001, 0.01):
        point = underestimation_factor(
            paper_parameters(disk_failure_rate=failure_rate, hep=hep)
        )
        print(
            f"ignoring human error at hep={hep:g} underestimates unavailability "
            f"by {point.factor:.1f}x"
        )


if __name__ == "__main__":
    main()
