"""SLO planning: how good must operators and rebuilds be to hit a target?

Uses the inverse analyses in :mod:`repro.analysis` to answer the questions a
storage SRE team actually asks when adopting the paper's models:

* what is the maximum tolerable human error probability for a 7-nines SLO?
* if procedures cannot be improved, how fast must rebuilds become?
* which parameter is worth investing in at all (sensitivity tornado)?
* what does an exa-scale fleet's yearly error budget look like?

Run with::

    python examples/slo_planning.py
"""

from __future__ import annotations

from repro.analysis import (
    dominant_parameter,
    exascale_motivation,
    maximum_tolerable_hep,
    one_at_a_time,
    required_repair_rate,
)
from repro.core.parameters import paper_parameters

TARGET_NINES = 7.0
FAILURE_RATE = 1e-6


def main() -> None:
    params = paper_parameters(disk_failure_rate=FAILURE_RATE, hep=0.01)

    print(f"Target: {TARGET_NINES:.1f} nines for a RAID5(3+1) group at lambda={FAILURE_RATE:g}/h\n")

    hep_limit = maximum_tolerable_hep(params, TARGET_NINES)
    print(f"1. Maximum tolerable human error probability: hep <= {hep_limit:.4f}")
    print("   (the paper's surveyed hep band for enterprise operations is 0.001-0.01)\n")

    mu_df_needed = required_repair_rate(params, TARGET_NINES)
    print(
        f"2. Keeping hep = {params.hep:g}, the rebuild+replacement rate must reach "
        f"mu_DF >= {mu_df_needed:.3f}/h (mean service time <= {1/mu_df_needed:.1f} h)\n"
    )

    entries = one_at_a_time(params)
    print("3. Sensitivity tornado (x2 perturbation), largest swing first:")
    for entry in entries:
        print(f"   {entry.parameter:<24} swing in unavailability = {entry.swing:.3e}")
    print(f"   dominant parameter: {dominant_parameter(entries)}\n")

    fleet = exascale_motivation(disks=1_000_000, disk_failure_rate=FAILURE_RATE, hep=params.hep)
    print("4. Exa-scale fleet error budget (1M disks):")
    print(f"   disk failures per hour:  {fleet['failures_per_hour']:.2f}")
    print(f"   replacements per year:   {fleet['failures_per_year']:.0f}")
    print(f"   wrong pulls per year:    {fleet['human_errors_per_year']:.0f}")
    print(f"   wrong pulls per day:     {fleet['human_errors_per_day']:.2f}")


if __name__ == "__main__":
    main()
