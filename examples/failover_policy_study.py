"""Policy study: is automatic fail-over worth a dedicated hot spare?

Compares the conventional replacement policy (technician swaps the failed
disk immediately, while the array is degraded) against the automatic
fail-over / delayed replacement policy (rebuild to a hot spare first, swap
hardware afterwards) across a range of human error probabilities, using both
the analytical Markov models and a Monte Carlo cross-check at an exaggerated
failure rate.

Run with::

    python examples/failover_policy_study.py
"""

from __future__ import annotations

from repro import (
    MonteCarloConfig,
    PolicyKind,
    analytical_result,
    paper_parameters,
    run_monte_carlo,
)
from repro.availability import Table

HEP_VALUES = (0.0, 0.0005, 0.001, 0.005, 0.01, 0.05)
FAILURE_RATE = 1e-6

#: Exaggerated failure rate for the Monte Carlo cross-check so that a small
#: iteration count still observes downtime events.
MC_FAILURE_RATE = 1e-4
MC_ITERATIONS = 4000


def analytical_study() -> Table:
    """Return the Markov-model comparison across the hep sweep."""
    table = Table(
        title=f"Replacement policy comparison, RAID5(3+1), lambda={FAILURE_RATE:g}/h",
        columns=["hep", "conventional_nines", "failover_nines", "unavailability_gain"],
    )
    for hep in HEP_VALUES:
        params = paper_parameters(disk_failure_rate=FAILURE_RATE, hep=hep)
        conventional_policy = "baseline" if hep == 0.0 else "conventional"
        conventional = analytical_result(params, conventional_policy)
        failover = analytical_result(params, "automatic_failover")
        gain = (
            conventional.unavailability / failover.unavailability
            if failover.unavailability > 0
            else float("inf")
        )
        table.add_row(
            hep=hep,
            conventional_nines=conventional.nines,
            failover_nines=failover.nines,
            unavailability_gain=gain,
        )
    table.add_note("unavailability_gain = conventional unavailability / fail-over unavailability")
    return table


def monte_carlo_cross_check() -> Table:
    """Return a Monte Carlo confirmation of the policy gap at hep = 0.01."""
    table = Table(
        title=f"Monte Carlo cross-check, lambda={MC_FAILURE_RATE:g}/h, hep=0.01, "
        f"{MC_ITERATIONS} lifetimes of 10 years",
        columns=["policy", "mc_nines", "markov_nines", "du_events", "dl_events"],
    )
    params = paper_parameters(disk_failure_rate=MC_FAILURE_RATE, hep=0.01)
    for policy in (PolicyKind.CONVENTIONAL, PolicyKind.AUTOMATIC_FAILOVER):
        mc = run_monte_carlo(
            MonteCarloConfig(
                params=params,
                policy=policy,
                n_iterations=MC_ITERATIONS,
                horizon_hours=87_600.0,
                seed=2017,
            )
        )
        markov = analytical_result(params, policy)
        table.add_row(
            policy=policy.value,
            mc_nines=mc.nines,
            markov_nines=markov.nines,
            du_events=int(mc.totals["du_events"]),
            dl_events=int(mc.totals["dl_events"]),
        )
    return table


def main() -> None:
    print(analytical_study().render(float_format="{:.3f}"))
    print()
    print(monte_carlo_cross_check().render(float_format="{:.3f}"))
    print()
    print(
        "Reading: the two policies are equivalent when operators never err; the\n"
        "fail-over policy's advantage grows with hep because the operator only\n"
        "touches a fully redundant array, so a wrong pull degrades instead of\n"
        "interrupting service."
    )


if __name__ == "__main__":
    main()
