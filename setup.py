"""Setuptools shim.

The project is fully described by ``pyproject.toml``; this file exists so
that ``pip install -e .`` keeps working on environments whose setuptools
predates PEP 660 editable-install support (no ``wheel`` package available,
offline build isolation).
"""

from setuptools import setup

setup()
