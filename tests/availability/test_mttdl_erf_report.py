"""Unit tests for MTTDL estimators, ERF sizing and report tables."""

from __future__ import annotations

import pytest

from repro.availability import (
    Table,
    erf_for_geometry,
    erf_raid1,
    erf_raid5,
    erf_raid6,
    erf_table,
    format_availability,
    format_nines,
    mttdl_raid0,
    mttdl_raid1,
    mttdl_raid5,
    mttdl_raid6,
    mttdl_summary,
    plan_equal_usable_capacity,
    smallest_common_usable_capacity,
    table_from_series,
)
from repro.exceptions import ConfigurationError, RaidConfigurationError


class TestMttdl:
    def test_raid0(self):
        assert mttdl_raid0(4, 1e-5) == pytest.approx(1 / (4 * 1e-5))

    def test_raid5_exact_form(self):
        n, lam, mu = 4, 1e-5, 0.1
        expected = ((2 * n - 1) * lam + mu) / (n * (n - 1) * lam ** 2)
        assert mttdl_raid5(n, lam, mu) == pytest.approx(expected)

    def test_raid1_two_way_matches_raid5_n2(self):
        assert mttdl_raid1(1e-5, 0.1) == pytest.approx(mttdl_raid5(2, 1e-5, 0.1))

    def test_raid1_three_way_larger(self):
        assert mttdl_raid1(1e-5, 0.1, mirrors=3) > mttdl_raid1(1e-5, 0.1, mirrors=2)

    def test_raid6_beats_raid5(self):
        assert mttdl_raid6(8, 1e-5, 0.1) > mttdl_raid5(8, 1e-5, 0.1)

    def test_faster_repair_improves_mttdl(self):
        assert mttdl_raid5(4, 1e-5, 1.0) > mttdl_raid5(4, 1e-5, 0.01)

    def test_summary_keys(self):
        summary = mttdl_summary(4, 1e-5, 0.1)
        assert set(summary) == {"raid0", "raid1", "raid5", "raid6"}
        assert summary["raid0"] < summary["raid5"] < summary["raid6"]

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            mttdl_raid5(1, 1e-5, 0.1)
        with pytest.raises(ConfigurationError):
            mttdl_raid5(4, 0.0, 0.1)
        with pytest.raises(ConfigurationError):
            mttdl_raid0(0, 1e-5)
        with pytest.raises(ConfigurationError):
            mttdl_raid1(1e-5, 0.1, mirrors=1)
        with pytest.raises(ConfigurationError):
            mttdl_raid6(2, 1e-5, 0.1)


class TestErf:
    def test_paper_values(self):
        table = erf_table()
        assert table["RAID1(1+1)"] == pytest.approx(2.0)
        assert table["RAID5(3+1)"] == pytest.approx(4 / 3)
        assert table["RAID5(7+1)"] == pytest.approx(8 / 7)

    def test_erf_functions(self):
        assert erf_raid1(3) == 3.0
        assert erf_raid5(7) == pytest.approx(8 / 7)
        assert erf_raid6(6) == pytest.approx(8 / 6)
        assert erf_for_geometry(4, 2, copies=2) == pytest.approx(3.0)

    def test_erf_validation(self):
        with pytest.raises(RaidConfigurationError):
            erf_raid1(1)
        with pytest.raises(RaidConfigurationError):
            erf_raid5(1)
        with pytest.raises(RaidConfigurationError):
            erf_for_geometry(0, 1)

    def test_capacity_plan(self):
        plan = plan_equal_usable_capacity(21, data_disks_per_array=3, disks_per_array=4)
        assert plan.arrays == 7
        assert plan.total_disks == 28
        assert plan.erf == pytest.approx(4 / 3)

    def test_capacity_plan_divisibility(self):
        with pytest.raises(RaidConfigurationError):
            plan_equal_usable_capacity(20, data_disks_per_array=3, disks_per_array=4)

    def test_smallest_common_capacity(self):
        assert smallest_common_usable_capacity(1, 3, 7) == 21
        assert smallest_common_usable_capacity(2, 4) == 4
        with pytest.raises(RaidConfigurationError):
            smallest_common_usable_capacity()


class TestReportTables:
    def test_add_row_and_render(self):
        table = Table(title="demo", columns=["x", "y"])
        table.add_row(x=1, y=2.5).add_row(x=2, y=3.5)
        table.add_note("a note")
        text = table.render()
        assert "demo" in text and "a note" in text
        assert table.column("y") == [2.5, 3.5]

    def test_unknown_column_rejected(self):
        table = Table(title="demo", columns=["x"])
        with pytest.raises(KeyError):
            table.add_row(z=1)
        with pytest.raises(KeyError):
            table.column("z")

    def test_missing_cells_render_as_dash(self):
        table = Table(title="demo", columns=["x", "y"])
        table.add_row(x=1)
        assert "-" in table.render()

    def test_table_from_series(self):
        table = table_from_series(
            "fig", "hep", [0.0, 0.01], {"a": [1.0, 2.0], "b": [3.0, 4.0]}, notes=["n"]
        )
        assert table.columns == ["hep", "a", "b"]
        assert len(table.rows) == 2

    def test_table_from_series_length_mismatch(self):
        with pytest.raises(ValueError):
            table_from_series("fig", "x", [1, 2], {"a": [1.0]})

    def test_formatters(self):
        assert format_nines(7.236) == "7.24 nines"
        assert format_availability(0.999999).startswith("0.999999")

    def test_to_dicts_copy(self):
        table = Table(title="demo", columns=["x"])
        table.add_row(x=1)
        rows = table.to_dicts()
        rows[0]["x"] = 99
        assert table.rows[0]["x"] == 1
