"""Unit tests for availability arithmetic."""

from __future__ import annotations

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.availability import (
    HOURS_PER_YEAR,
    MAX_NINES,
    aggregate_nines,
    availability_from_mttf_mttr,
    availability_to_nines,
    downtime_hours_per_year,
    downtime_minutes_per_year,
    downtime_to_availability,
    k_out_of_n_availability,
    nines_to_availability,
    parallel_availability,
    series_availability,
    unavailability_ratio,
    unavailability_to_nines,
    validate_probability,
)
from repro.exceptions import ConfigurationError


class TestNines:
    @pytest.mark.parametrize(
        "availability,expected",
        [(0.9, 1.0), (0.99, 2.0), (0.999, 3.0), (0.99999, 5.0)],
    )
    def test_known_values(self, availability, expected):
        assert availability_to_nines(availability) == pytest.approx(expected, rel=1e-9)

    def test_perfect_availability_capped(self):
        assert availability_to_nines(1.0) == MAX_NINES

    def test_round_trip(self):
        for nines in (1.0, 3.5, 7.2):
            assert availability_to_nines(nines_to_availability(nines)) == pytest.approx(nines, rel=1e-9)

    def test_unavailability_to_nines(self):
        assert unavailability_to_nines(1e-6) == pytest.approx(6.0)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            availability_to_nines(1.5)
        with pytest.raises(ConfigurationError):
            nines_to_availability(-1.0)
        with pytest.raises(ConfigurationError):
            validate_probability(float("nan"))


class TestDowntime:
    def test_three_nines_is_8_76_hours(self):
        assert downtime_hours_per_year(0.999) == pytest.approx(8.76)
        assert downtime_minutes_per_year(0.999) == pytest.approx(525.6)

    def test_downtime_to_availability_round_trip(self):
        availability = 0.9999
        downtime = downtime_hours_per_year(availability)
        assert downtime_to_availability(downtime) == pytest.approx(availability)

    def test_downtime_validation(self):
        with pytest.raises(ConfigurationError):
            downtime_to_availability(-1.0)
        with pytest.raises(ConfigurationError):
            downtime_to_availability(10.0, period_hours=0.0)
        with pytest.raises(ConfigurationError):
            downtime_to_availability(HOURS_PER_YEAR + 1)


class TestCompositions:
    def test_mttf_mttr(self):
        assert availability_from_mttf_mttr(999.0, 1.0) == pytest.approx(0.999)
        with pytest.raises(ConfigurationError):
            availability_from_mttf_mttr(0.0, 1.0)

    def test_series_availability(self):
        assert series_availability([0.99, 0.99]) == pytest.approx(0.9801)
        with pytest.raises(ConfigurationError):
            series_availability([])

    def test_parallel_availability(self):
        assert parallel_availability([0.9, 0.9]) == pytest.approx(0.99)
        with pytest.raises(ConfigurationError):
            parallel_availability([])

    def test_k_out_of_n(self):
        # 3-out-of-4 with perfect components is 1; with p=0.9 it is known.
        assert k_out_of_n_availability(1.0, 3, 4) == pytest.approx(1.0)
        expected = 4 * 0.9 ** 3 * 0.1 + 0.9 ** 4
        assert k_out_of_n_availability(0.9, 3, 4) == pytest.approx(expected)
        with pytest.raises(ConfigurationError):
            k_out_of_n_availability(0.9, 5, 4)

    def test_unavailability_ratio(self):
        assert unavailability_ratio(1e-4, 1e-6) == pytest.approx(100.0)
        assert unavailability_ratio(1e-4, 0.0) == float("inf")

    def test_aggregate_nines(self):
        assert aggregate_nines([3.0, 3.0]) == pytest.approx(
            availability_to_nines(0.999 * 0.999)
        )


class TestProperties:
    @given(st.floats(min_value=0.0, max_value=1.0 - 1e-12))
    def test_nines_round_trip_property(self, availability):
        nines = availability_to_nines(availability)
        assert nines_to_availability(nines) == pytest.approx(availability, abs=1e-12)

    @given(st.lists(st.floats(min_value=0.0, max_value=1.0), min_size=1, max_size=6))
    def test_series_never_exceeds_weakest_component(self, availabilities):
        combined = series_availability(availabilities)
        assert combined <= min(availabilities) + 1e-12

    @given(st.lists(st.floats(min_value=0.0, max_value=1.0), min_size=1, max_size=6))
    def test_parallel_never_below_best_component(self, availabilities):
        combined = parallel_availability(availabilities)
        assert combined >= max(availabilities) - 1e-12

    @given(
        st.floats(min_value=0.5, max_value=1.0),
        st.integers(min_value=1, max_value=6),
        st.integers(min_value=1, max_value=6),
    )
    def test_k_out_of_n_monotone_in_k(self, p, k, extra):
        n = k + extra
        assert k_out_of_n_availability(p, k, n) >= k_out_of_n_availability(p, k + 1, n) - 1e-12

    def test_log_relation(self):
        value = 0.9999
        assert availability_to_nines(value) == pytest.approx(-math.log10(1 - value))
