"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.parameters import AvailabilityParameters, paper_parameters
from repro.storage.raid import RaidGeometry


@pytest.fixture
def rng() -> np.random.Generator:
    """Deterministic random generator for stochastic tests."""
    return np.random.default_rng(12345)


@pytest.fixture
def paper_params() -> AvailabilityParameters:
    """The paper's default RAID5(3+1) parameter set (hep = 0.001)."""
    return paper_parameters()


@pytest.fixture
def raid5_geometry() -> RaidGeometry:
    """RAID5(3+1) geometry used throughout the paper."""
    return RaidGeometry.raid5(3)


@pytest.fixture
def raid1_geometry() -> RaidGeometry:
    """RAID1(1+1) geometry used in the Fig. 6 comparison."""
    return RaidGeometry.raid1(2)


@pytest.fixture
def fast_failure_params() -> AvailabilityParameters:
    """Exaggerated rates so Monte Carlo runs see events quickly."""
    return paper_parameters(disk_failure_rate=1e-4, hep=0.05)
