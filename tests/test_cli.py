"""Unit tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestSolveCommand:
    def test_default_solve(self, capsys):
        assert main(["solve"]) == 0
        out = capsys.readouterr().out
        assert "nines:" in out and "RAID5(3+1)" in out

    def test_solve_raid1_failover(self, capsys):
        assert main([
            "solve", "--raid", "RAID1(1+1)", "--hep", "0.01",
            "--model", "automatic_failover", "--failure-rate", "1e-5",
        ]) == 0
        out = capsys.readouterr().out
        assert "automatic_failover" in out and "RAID1(1+1)" in out

    def test_solve_baseline_matches_library(self, capsys):
        from repro import analytical_result, paper_parameters

        main(["solve", "--model", "baseline", "--hep", "0"])
        out = capsys.readouterr().out
        expected = analytical_result(paper_parameters(hep=0.0), "baseline").nines
        assert f"{expected:.3f}" in out


class TestCompareCommand:
    def test_compare_prints_ranking(self, capsys):
        assert main(["compare", "--hep", "0.01", "--failure-rate", "1e-6"]) == 0
        out = capsys.readouterr().out
        assert "ranking (best first):" in out
        assert "RAID5(7+1)" in out

    def test_compare_hep_zero_prefers_raid1(self, capsys):
        main(["compare", "--hep", "0", "--failure-rate", "1e-6"])
        out = capsys.readouterr().out
        ranking_line = [line for line in out.splitlines() if line.startswith("ranking")][0]
        assert ranking_line.split(": ")[1].split(" > ")[0] == "RAID1(1+1)"


class TestMcCommand:
    def test_mc_batch_run(self, capsys):
        assert main([
            "mc", "--policy", "conventional", "--failure-rate", "1e-4",
            "--hep", "0.05", "--iterations", "500", "--seed", "1",
        ]) == 0
        out = capsys.readouterr().out
        assert "policy:             conventional" in out
        assert "availability:" in out and "interval:" in out

    def test_mc_hot_spare_pool_end_to_end(self, capsys):
        assert main([
            "mc", "--policy", "hot_spare_pool", "--failure-rate", "1e-4",
            "--hep", "0.05", "--iterations", "500", "--seed", "1",
        ]) == 0
        out = capsys.readouterr().out
        assert "hot_spare_pool" in out and "disk failures" in out

    def test_mc_custom_spares(self, capsys):
        assert main([
            "mc", "--spares", "3", "--failure-rate", "1e-4",
            "--hep", "0.05", "--iterations", "300", "--seed", "1",
        ]) == 0
        out = capsys.readouterr().out
        assert "hot_spare_pool_k3" in out

    def test_mc_scalar_executor(self, capsys):
        assert main([
            "mc", "--executor", "scalar", "--failure-rate", "1e-4",
            "--hep", "0.05", "--iterations", "200", "--seed", "1",
        ]) == 0
        assert "executor:           scalar" in capsys.readouterr().out

    def test_mc_seed_entropy_printed(self, capsys):
        assert main([
            "mc", "--failure-rate", "1e-4", "--hep", "0.05",
            "--iterations", "200", "--seed", "17",
        ]) == 0
        assert "seed entropy:       17" in capsys.readouterr().out

    def test_mc_random_seed_resolves_entropy(self, capsys):
        assert main([
            "mc", "--failure-rate", "1e-4", "--hep", "0.05",
            "--iterations", "200", "--seed", "random",
        ]) == 0
        out = capsys.readouterr().out
        entropy_line = next(line for line in out.splitlines() if "seed entropy:" in line)
        assert int(entropy_line.split(":")[1]) >= 0

    def test_mc_sharded_workers(self, capsys):
        assert main([
            "mc", "--failure-rate", "1e-4", "--hep", "0.05",
            "--iterations", "600", "--seed", "1", "--workers", "2",
        ]) == 0
        out = capsys.readouterr().out
        assert "(sharded, 2 workers, process pool)" in out
        assert "iterations:         600" in out

    def test_mc_adaptive_target_half_width(self, capsys):
        assert main([
            "mc", "--failure-rate", "1e-4", "--hep", "0.05",
            "--iterations", "300", "--seed", "1",
            "--target-half-width", "2e-4", "--max-iterations", "5000",
        ]) == 0
        out = capsys.readouterr().out
        assert "(sharded, 1 worker)" in out

    def test_mc_pinned_shard_size_worker_invariant(self, capsys):
        args = [
            "mc", "--failure-rate", "1e-4", "--hep", "0.05",
            "--iterations", "600", "--seed", "1", "--shard-size", "200",
        ]
        assert main(args + ["--workers", "1"]) == 0
        one = capsys.readouterr().out
        assert main(args + ["--workers", "2"]) == 0
        two = capsys.readouterr().out
        line = next(l for l in one.splitlines() if "availability:" in l)
        assert line in two  # same decomposition -> bit-identical estimate

    def test_mc_negative_seed_is_clean_usage_error(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["mc", "--iterations", "200", "--seed", "-5"])
        assert excinfo.value.code == 2
        assert "seed must be non-negative" in capsys.readouterr().err

    def test_mc_max_iterations_requires_target(self, capsys):
        assert main([
            "mc", "--iterations", "200", "--max-iterations", "5000",
        ]) == 2
        assert "--target-half-width" in capsys.readouterr().err

    def test_mc_policy_and_spares_conflict(self, capsys):
        assert main([
            "mc", "--policy", "conventional", "--spares", "2", "--iterations", "100",
        ]) == 2
        assert "mutually exclusive" in capsys.readouterr().err

    def test_mc_unknown_policy_is_clean_error(self, capsys):
        assert main(["mc", "--policy", "bogus", "--iterations", "100"]) == 2
        err = capsys.readouterr().err
        assert "unknown policy 'bogus'" in err
        assert "conventional" in err  # the error lists the alternatives


class TestSweepCommand:
    def test_analytical_hep_sweep(self, capsys):
        assert main([
            "sweep", "--axis", "hep", "--values", "0,0.001,0.01",
            "--backend", "auto",
        ]) == 0
        out = capsys.readouterr().out
        assert "axis:     hep (3 points)" in out
        assert "backend:  auto" in out
        assert out.count("0.9999") >= 3

    def test_sweep_matches_solve(self, capsys):
        assert main(["sweep", "--axis", "hep", "--values", "0.01"]) == 0
        sweep_out = capsys.readouterr().out
        assert main(["solve", "--hep", "0.01"]) == 0
        solve_out = capsys.readouterr().out
        availability = next(
            line.split(":")[1].strip()
            for line in solve_out.splitlines() if line.startswith("availability")
        )
        assert availability in sweep_out

    def test_grid_spacing(self, capsys):
        assert main([
            "sweep", "--axis", "failure_rate", "--grid", "5e-7:5.5e-6:6",
            "--policy", "automatic_failover",
        ]) == 0
        out = capsys.readouterr().out
        assert "axis:     failure_rate (6 points)" in out

    def test_log_grid(self, capsys):
        assert main([
            "sweep", "--axis", "failure_rate", "--grid", "1e-7:1e-5:3:log",
        ]) == 0
        assert "(3 points)" in capsys.readouterr().out

    def test_monte_carlo_backend_prints_intervals(self, capsys):
        assert main([
            "sweep", "--axis", "hep", "--values", "0.05", "--backend", "monte_carlo",
            "--failure-rate", "1e-4", "--iterations", "400", "--seed", "1",
        ]) == 0
        out = capsys.readouterr().out
        assert "ci_low" in out and "ci_high" in out

    def test_two_axis_grid_monte_carlo(self, capsys):
        assert main([
            "sweep", "--axis", "hep", "--values", "0,0.05",
            "--axis2", "failure_rate", "--grid2", "1e-5:1e-4:2",
            "--backend", "monte_carlo", "--failure-rate", "1e-4",
            "--iterations", "400", "--seed", "1",
        ]) == 0
        out = capsys.readouterr().out
        assert "hep x failure_rate" in out and "2 x 2 = 4 points" in out
        assert "ci_low" in out

    def test_two_axis_grid_analytical(self, capsys):
        assert main([
            "sweep", "--axis", "hep", "--values", "0.001,0.01",
            "--axis2", "failure_rate", "--values2", "1e-6,1e-5",
        ]) == 0
        out = capsys.readouterr().out
        assert "2 x 2 = 4 points" in out and "ci_low" not in out

    def test_crn_flag_runs_stacked_engine(self, capsys):
        assert main([
            "sweep", "--axis", "hep", "--values", "0.01,0.05",
            "--backend", "monte_carlo", "--failure-rate", "1e-4",
            "--iterations", "400", "--seed", "1", "--crn",
        ]) == 0
        assert "ci_low" in capsys.readouterr().out

    def test_per_point_engine_still_available(self, capsys):
        assert main([
            "sweep", "--axis", "hep", "--values", "0.05",
            "--backend", "monte_carlo", "--failure-rate", "1e-4",
            "--iterations", "400", "--seed", "1", "--mc-engine", "per_point",
        ]) == 0
        assert "ci_low" in capsys.readouterr().out

    def test_axis2_without_values2_is_clean_error(self, capsys):
        assert main([
            "sweep", "--axis", "hep", "--values", "0.01",
            "--axis2", "failure_rate",
        ]) == 2
        assert "--axis2 and --values2/--grid2" in capsys.readouterr().err

    def test_missing_values_is_clean_error(self, capsys):
        assert main(["sweep", "--axis", "hep"]) == 2
        assert "--values or --grid" in capsys.readouterr().err

    def test_bad_grid_is_clean_error(self, capsys):
        assert main(["sweep", "--axis", "hep", "--grid", "nonsense"]) == 2
        assert "START:STOP:POINTS" in capsys.readouterr().err

    def test_bad_values_is_clean_error(self, capsys):
        assert main(["sweep", "--axis", "hep", "--values", "a,b"]) == 2
        assert "comma-separated" in capsys.readouterr().err


class TestCrossvalCommand:
    def test_smoke_run_passes(self, capsys):
        assert main([
            "crossval", "--iterations", "1500", "--seed", "0",
        ]) == 0
        out = capsys.readouterr().out
        assert "cross-validation: PASS" in out
        assert "automatic_failover" in out and "baseline" in out


class TestPoliciesCommand:
    def test_policies_lists_registry(self, capsys):
        assert main(["policies"]) == 0
        out = capsys.readouterr().out
        assert "conventional" in out
        assert "automatic_failover" in out
        assert "hot_spare_pool" in out
        assert "erasure" in out
        assert "batch+scalar" in out
        # the erasure family advertises its periodic scheme; the legacy
        # policies advertise continuous repair
        assert "check every 730 h" in out
        assert "continuous repair" in out


class TestReproduceCommand:
    def test_reproduce_without_monte_carlo(self, capsys):
        assert main(["reproduce", "--no-mc"]) == 0
        out = capsys.readouterr().out
        assert "Fig. 5" in out and "Fig. 7" in out
        assert "max_underestimation_factor" in out


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_rejects_unknown_model(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["solve", "--model", "bogus"])
