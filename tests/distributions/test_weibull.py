"""Unit tests for the Weibull distribution."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.distributions import Exponential, Weibull
from repro.exceptions import DistributionError


class TestConstruction:
    def test_accessors(self):
        dist = Weibull(shape=1.2, scale=1e6)
        assert dist.shape == pytest.approx(1.2)
        assert dist.scale == pytest.approx(1e6)

    def test_from_mean_and_shape_round_trip(self):
        dist = Weibull.from_mean_and_shape(1e6, 1.12)
        assert dist.mean() == pytest.approx(1e6, rel=1e-9)

    def test_from_rate_and_shape_matches_paper_convention(self):
        # The paper quotes "failure rate 1.25e-6, beta 1.09": mean = 1/rate.
        dist = Weibull.from_rate_and_shape(1.25e-6, 1.09)
        assert dist.mean() == pytest.approx(1 / 1.25e-6, rel=1e-9)

    @pytest.mark.parametrize("shape,scale", [(0.0, 1.0), (1.0, 0.0), (-1.0, 1.0)])
    def test_invalid_parameters(self, shape, scale):
        with pytest.raises(DistributionError):
            Weibull(shape=shape, scale=scale)

    def test_invalid_rate(self):
        with pytest.raises(DistributionError):
            Weibull.from_rate_and_shape(0.0, 1.1)


class TestShapeOne:
    """With shape = 1 the Weibull reduces to the exponential."""

    def test_matches_exponential_cdf(self):
        weibull = Weibull(shape=1.0, scale=100.0)
        exponential = Exponential(0.01)
        t = np.linspace(0, 500, 50)
        assert np.allclose(weibull.cdf(t), exponential.cdf(t))

    def test_matches_exponential_mean_variance(self):
        weibull = Weibull(shape=1.0, scale=100.0)
        assert weibull.mean() == pytest.approx(100.0)
        assert weibull.variance() == pytest.approx(10_000.0)


class TestHazard:
    def test_increasing_hazard_for_shape_above_one(self):
        dist = Weibull(shape=1.5, scale=1000.0)
        hazard = dist.hazard([10.0, 100.0, 1000.0])
        assert hazard[0] < hazard[1] < hazard[2]

    def test_decreasing_hazard_for_shape_below_one(self):
        dist = Weibull(shape=0.7, scale=1000.0)
        hazard = dist.hazard([10.0, 100.0, 1000.0])
        assert hazard[0] > hazard[1] > hazard[2]


class TestFunctions:
    def test_cdf_at_scale_is_63_percent(self):
        dist = Weibull(shape=1.48, scale=500.0)
        assert float(dist.cdf(500.0)) == pytest.approx(1 - math.exp(-1), rel=1e-9)

    def test_percentile_inverse_of_cdf(self):
        dist = Weibull(shape=1.21, scale=1e5)
        for q in (0.05, 0.5, 0.95):
            assert float(dist.cdf(dist.percentile(q))) == pytest.approx(q, rel=1e-9)

    def test_pdf_zero_for_negative_times(self):
        dist = Weibull(shape=2.0, scale=10.0)
        assert float(dist.pdf(-1.0)) == 0.0
        assert float(dist.cdf(-1.0)) == 0.0

    def test_pdf_at_zero_special_cases(self):
        assert float(Weibull(shape=2.0, scale=10.0).pdf(0.0)) == 0.0
        assert float(Weibull(shape=1.0, scale=10.0).pdf(0.0)) == pytest.approx(0.1)
        assert math.isinf(float(Weibull(shape=0.5, scale=10.0).pdf(0.0)))


class TestSampling:
    def test_sample_mean_close_to_theory(self, rng):
        dist = Weibull.from_mean_and_shape(200.0, 1.48)
        samples = dist.sample(40_000, rng)
        assert samples.mean() == pytest.approx(200.0, rel=0.05)

    def test_samples_non_negative(self, rng):
        samples = Weibull(shape=1.09, scale=1e4).sample(1000, rng)
        assert np.all(samples >= 0.0)


class TestEquality:
    def test_equality_and_hash(self):
        a = Weibull(shape=1.2, scale=10.0)
        b = Weibull(shape=1.2, scale=10.0)
        assert a == b and hash(a) == hash(b)
        assert a != Weibull(shape=1.3, scale=10.0)
