"""Unit tests for lognormal, gamma, deterministic and empirical distributions."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.distributions import Deterministic, Empirical, Gamma, LogNormal
from repro.exceptions import DistributionError


class TestLogNormal:
    def test_mean_and_median(self):
        dist = LogNormal(mu=math.log(10.0), sigma=0.5)
        assert dist.median() == pytest.approx(10.0)
        assert dist.mean() == pytest.approx(10.0 * math.exp(0.125))

    def test_from_error_factor(self):
        dist = LogNormal.from_mean_and_error_factor(2.0, 3.0)
        # 95th percentile over median equals the error factor.
        assert dist.percentile(0.95) / dist.median() == pytest.approx(3.0, rel=1e-6)

    def test_from_mean_and_cv(self):
        dist = LogNormal.from_mean_and_cv(5.0, 0.8)
        assert dist.mean() == pytest.approx(5.0, rel=1e-9)
        assert dist.std() / dist.mean() == pytest.approx(0.8, rel=1e-9)

    def test_cdf_pdf_support(self):
        dist = LogNormal(mu=0.0, sigma=1.0)
        assert float(dist.cdf(0.0)) == 0.0
        assert float(dist.pdf(-1.0)) == 0.0
        assert float(dist.cdf(1.0)) == pytest.approx(0.5)

    def test_percentile_round_trip(self):
        dist = LogNormal(mu=1.0, sigma=0.4)
        assert float(dist.cdf(dist.percentile(0.8))) == pytest.approx(0.8, rel=1e-6)

    def test_invalid_parameters(self):
        with pytest.raises(DistributionError):
            LogNormal(mu=0.0, sigma=0.0)
        with pytest.raises(DistributionError):
            LogNormal.from_mean_and_error_factor(1.0, 0.5)

    def test_sampling_mean(self, rng):
        dist = LogNormal.from_mean_and_cv(4.0, 0.5)
        assert dist.sample(50_000, rng).mean() == pytest.approx(4.0, rel=0.05)


class TestGamma:
    def test_moments(self):
        dist = Gamma(shape=3.0, scale=2.0)
        assert dist.mean() == pytest.approx(6.0)
        assert dist.variance() == pytest.approx(12.0)

    def test_erlang_constructor(self):
        dist = Gamma.erlang(stages=4, stage_rate=0.5)
        assert dist.mean() == pytest.approx(8.0)
        assert dist.shape == pytest.approx(4.0)

    def test_from_mean_and_shape(self):
        dist = Gamma.from_mean_and_shape(10.0, 2.5)
        assert dist.mean() == pytest.approx(10.0)

    def test_cdf_matches_exponential_for_shape_one(self):
        gamma = Gamma(shape=1.0, scale=10.0)
        t = np.linspace(0.0, 100.0, 30)
        expected = 1.0 - np.exp(-t / 10.0)
        assert np.allclose(gamma.cdf(t), expected)

    def test_percentile_round_trip(self):
        dist = Gamma(shape=2.0, scale=5.0)
        assert float(dist.cdf(dist.percentile(0.3))) == pytest.approx(0.3, rel=1e-6)

    def test_invalid_parameters(self):
        with pytest.raises(DistributionError):
            Gamma(shape=-1.0, scale=1.0)
        with pytest.raises(DistributionError):
            Gamma.erlang(stages=0, stage_rate=1.0)

    def test_sampling(self, rng):
        dist = Gamma(shape=2.0, scale=3.0)
        assert dist.sample(50_000, rng).mean() == pytest.approx(6.0, rel=0.05)


class TestDeterministic:
    def test_fixed_value(self, rng):
        dist = Deterministic(10.0)
        assert dist.mean() == 10.0
        assert dist.variance() == 0.0
        assert np.all(dist.sample(5, rng) == 10.0)

    def test_cdf_step(self):
        dist = Deterministic(10.0)
        assert float(dist.cdf(9.999)) == 0.0
        assert float(dist.cdf(10.0)) == 1.0

    def test_percentile_is_value(self):
        assert Deterministic(3.5).percentile(0.99) == 3.5

    def test_invalid(self):
        with pytest.raises(DistributionError):
            Deterministic(0.0)


class TestEmpirical:
    def test_moments_match_samples(self):
        data = [1.0, 2.0, 3.0, 4.0]
        dist = Empirical(data)
        assert dist.mean() == pytest.approx(2.5)
        assert dist.n_samples == 4

    def test_cdf_is_ecdf(self):
        dist = Empirical([1.0, 2.0, 3.0, 4.0])
        assert float(dist.cdf(2.5)) == pytest.approx(0.5)
        assert float(dist.cdf(0.5)) == 0.0
        assert float(dist.cdf(10.0)) == 1.0

    def test_bootstrap_sampling_stays_in_support(self, rng):
        data = [5.0, 10.0, 20.0]
        dist = Empirical(data, interpolate=False)
        samples = dist.sample(100, rng)
        assert set(np.unique(samples)).issubset(set(data))

    def test_interpolated_sampling_within_range(self, rng):
        dist = Empirical([5.0, 10.0, 20.0])
        samples = dist.sample(500, rng)
        assert samples.min() >= 5.0 and samples.max() <= 20.0

    def test_percentile(self):
        dist = Empirical(list(range(1, 101)))
        assert dist.percentile(0.5) == pytest.approx(50.5, rel=0.02)

    def test_invalid(self):
        with pytest.raises(DistributionError):
            Empirical([])
        with pytest.raises(DistributionError):
            Empirical([1.0, -2.0])
