"""Property-based tests for the distribution layer (hypothesis)."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.distributions import Exponential, Gamma, LogNormal, Weibull

RATES = st.floats(min_value=1e-8, max_value=10.0, allow_nan=False, allow_infinity=False)
SHAPES = st.floats(min_value=0.3, max_value=5.0, allow_nan=False, allow_infinity=False)
SCALES = st.floats(min_value=1e-3, max_value=1e7, allow_nan=False, allow_infinity=False)
TIMES = st.floats(min_value=0.0, max_value=1e8, allow_nan=False, allow_infinity=False)
QUANTILES = st.floats(min_value=0.001, max_value=0.999)


@given(rate=RATES, t=TIMES)
def test_exponential_cdf_in_unit_interval(rate, t):
    cdf = float(Exponential(rate).cdf(t))
    assert 0.0 <= cdf <= 1.0


@given(rate=RATES, q=QUANTILES)
def test_exponential_percentile_cdf_round_trip(rate, q):
    dist = Exponential(rate)
    np.testing.assert_allclose(float(dist.cdf(dist.percentile(q))), q, rtol=1e-6)


@given(shape=SHAPES, scale=SCALES, t=TIMES)
def test_weibull_cdf_monotone_in_time(shape, scale, t):
    dist = Weibull(shape=shape, scale=scale)
    later = t * 1.5 + 1.0
    assert float(dist.cdf(t)) <= float(dist.cdf(later)) + 1e-12


@given(shape=SHAPES, scale=SCALES)
def test_weibull_mean_positive_and_survival_complements_cdf(shape, scale):
    dist = Weibull(shape=shape, scale=scale)
    assert dist.mean() > 0.0
    t = np.array([0.5 * scale, scale, 2.0 * scale])
    np.testing.assert_allclose(dist.cdf(t) + dist.survival(t), 1.0, rtol=1e-9)


@given(shape=SHAPES, scale=st.floats(min_value=1e-2, max_value=1e4), q=QUANTILES)
@settings(max_examples=50)
def test_gamma_percentile_round_trip(shape, scale, q):
    dist = Gamma(shape=shape, scale=scale)
    np.testing.assert_allclose(float(dist.cdf(dist.percentile(q))), q, rtol=1e-4, atol=1e-6)


@given(
    mu=st.floats(min_value=-3.0, max_value=8.0),
    sigma=st.floats(min_value=0.05, max_value=2.5),
)
def test_lognormal_median_below_mean(mu, sigma):
    dist = LogNormal(mu=mu, sigma=sigma)
    # For a lognormal the mean always exceeds the median.
    assert dist.mean() >= dist.median()


@given(rate=RATES)
@settings(max_examples=30)
def test_exponential_sampling_non_negative(rate):
    rng = np.random.default_rng(0)
    samples = Exponential(rate).sample(100, rng)
    assert np.all(samples >= 0.0)


@given(shape=SHAPES, scale=SCALES)
@settings(max_examples=30)
def test_weibull_sampling_non_negative(shape, scale):
    rng = np.random.default_rng(1)
    samples = Weibull(shape=shape, scale=scale).sample(100, rng)
    assert np.all(samples >= 0.0)
