"""Unit tests for the distribution factory."""

from __future__ import annotations

import pytest

from repro.distributions import (
    Deterministic,
    Empirical,
    Exponential,
    Gamma,
    LogNormal,
    Weibull,
    describe_distribution,
    make_distribution,
)
from repro.exceptions import DistributionError


class TestMakeDistribution:
    def test_exponential_from_rate(self):
        dist = make_distribution({"kind": "exponential", "rate": 0.1})
        assert isinstance(dist, Exponential)
        assert dist.rate_parameter == pytest.approx(0.1)

    def test_exponential_from_mean(self):
        dist = make_distribution({"kind": "exponential", "mean": 10.0})
        assert dist.mean() == pytest.approx(10.0)

    def test_weibull_from_rate(self):
        dist = make_distribution({"kind": "weibull", "rate": 1e-6, "shape": 1.12})
        assert isinstance(dist, Weibull)
        assert dist.mean() == pytest.approx(1e6, rel=1e-9)

    def test_weibull_requires_shape(self):
        with pytest.raises(DistributionError):
            make_distribution({"kind": "weibull", "scale": 100.0})

    def test_lognormal_variants(self):
        assert isinstance(
            make_distribution({"kind": "lognormal", "mu": 0.0, "sigma": 1.0}), LogNormal
        )
        assert isinstance(
            make_distribution({"kind": "lognormal", "median": 2.0, "error_factor": 3.0}),
            LogNormal,
        )
        assert isinstance(
            make_distribution({"kind": "lognormal", "mean": 2.0, "cv": 0.5}), LogNormal
        )

    def test_gamma(self):
        dist = make_distribution({"kind": "gamma", "shape": 2.0, "mean": 8.0})
        assert isinstance(dist, Gamma)
        assert dist.mean() == pytest.approx(8.0)

    def test_deterministic(self):
        dist = make_distribution({"kind": "deterministic", "value": 10.0})
        assert isinstance(dist, Deterministic)

    def test_empirical(self):
        dist = make_distribution({"kind": "empirical", "samples": [1.0, 2.0]})
        assert isinstance(dist, Empirical)

    def test_unknown_kind(self):
        with pytest.raises(DistributionError):
            make_distribution({"kind": "pareto", "alpha": 2.0})

    def test_missing_kind(self):
        with pytest.raises(DistributionError):
            make_distribution({"rate": 1.0})

    def test_case_insensitive_kind(self):
        dist = make_distribution({"kind": "EXPONENTIAL", "rate": 1.0})
        assert isinstance(dist, Exponential)


class TestDescribeDistribution:
    @pytest.mark.parametrize(
        "dist",
        [
            Exponential(0.25),
            Weibull(shape=1.3, scale=500.0),
            LogNormal(mu=1.0, sigma=0.5),
            Gamma(shape=2.0, scale=3.0),
            Deterministic(7.5),
            Empirical([1.0, 2.0, 3.0]),
        ],
    )
    def test_round_trip(self, dist):
        rebuilt = make_distribution(describe_distribution(dist))
        assert type(rebuilt) is type(dist)
        assert rebuilt.mean() == pytest.approx(dist.mean(), rel=1e-9)

    def test_unknown_type_rejected(self):
        class Fake:
            pass

        with pytest.raises(DistributionError):
            describe_distribution(Fake())  # type: ignore[arg-type]
