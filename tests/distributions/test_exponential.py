"""Unit tests for the exponential distribution."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.distributions import Exponential
from repro.exceptions import DistributionError


class TestConstruction:
    def test_rate_accessor(self):
        dist = Exponential(0.5)
        assert dist.rate_parameter == pytest.approx(0.5)
        assert dist.rate() == pytest.approx(0.5)

    def test_from_mean(self):
        dist = Exponential.from_mean(20.0)
        assert dist.mean() == pytest.approx(20.0)
        assert dist.rate_parameter == pytest.approx(0.05)

    def test_from_mttf_alias(self):
        assert Exponential.from_mttf(100.0) == Exponential.from_mean(100.0)

    def test_from_afr(self):
        dist = Exponential.from_afr(0.02)
        # 2% AFR over 8760 hours is roughly 2.3e-6 per hour.
        assert dist.rate_parameter == pytest.approx(2.306e-6, rel=1e-3)

    @pytest.mark.parametrize("bad", [0.0, -1.0, float("nan"), float("inf")])
    def test_invalid_rate_rejected(self, bad):
        with pytest.raises(DistributionError):
            Exponential(bad)

    def test_invalid_afr_rejected(self):
        with pytest.raises(DistributionError):
            Exponential.from_afr(1.5)


class TestMoments:
    def test_mean_variance(self):
        dist = Exponential(2.0)
        assert dist.mean() == pytest.approx(0.5)
        assert dist.variance() == pytest.approx(0.25)
        assert dist.std() == pytest.approx(0.5)

    def test_median_equals_log2_over_rate(self):
        dist = Exponential(0.1)
        assert dist.median() == pytest.approx(math.log(2) / 0.1, rel=1e-6)


class TestFunctions:
    def test_cdf_at_mean(self):
        dist = Exponential(1.0)
        assert float(dist.cdf(1.0)) == pytest.approx(1 - math.exp(-1))

    def test_cdf_monotone_and_bounded(self):
        dist = Exponential(0.3)
        t = np.linspace(0, 50, 200)
        cdf = dist.cdf(t)
        assert np.all(np.diff(cdf) >= 0)
        assert cdf[0] == pytest.approx(0.0)
        assert cdf[-1] <= 1.0

    def test_negative_times(self):
        dist = Exponential(1.0)
        assert float(dist.cdf(-5.0)) == 0.0
        assert float(dist.pdf(-5.0)) == 0.0
        assert float(dist.survival(-5.0)) == 1.0

    def test_constant_hazard(self):
        dist = Exponential(0.25)
        hazard = dist.hazard([0.0, 1.0, 100.0])
        assert np.allclose(hazard, 0.25)

    def test_percentile_inverse_of_cdf(self):
        dist = Exponential(0.05)
        for q in (0.1, 0.5, 0.9, 0.999):
            assert float(dist.cdf(dist.percentile(q))) == pytest.approx(q, rel=1e-9)

    def test_percentile_requires_open_interval(self):
        with pytest.raises(DistributionError):
            Exponential(1.0).percentile(1.0)


class TestSampling:
    def test_sample_mean_close_to_theory(self, rng):
        dist = Exponential(0.02)
        samples = dist.sample(40_000, rng)
        assert samples.mean() == pytest.approx(50.0, rel=0.05)
        assert np.all(samples >= 0.0)

    def test_sample_size(self, rng):
        assert Exponential(1.0).sample(7, rng).shape == (7,)


class TestEquality:
    def test_equal_and_hash(self):
        assert Exponential(0.1) == Exponential(0.1)
        assert hash(Exponential(0.1)) == hash(Exponential(0.1))
        assert Exponential(0.1) != Exponential(0.2)

    def test_not_equal_to_other_types(self):
        assert (Exponential(0.1) == 42) is False
