"""Unit tests for the disk model and RAID geometries."""

from __future__ import annotations

import numpy as np
import pytest

from repro.distributions import Exponential, Weibull
from repro.exceptions import RaidConfigurationError, StorageModelError
from repro.storage import Disk, DiskParameters, DiskState, RaidGeometry, RaidLevel
from repro.storage.raid import paper_configurations


class TestDiskLifecycle:
    def test_initial_state(self):
        disk = Disk("d0")
        assert disk.state is DiskState.OPERATIONAL
        assert disk.is_available
        assert disk.failure_count == 0

    def test_fail_and_replace(self):
        disk = Disk("d0")
        disk.fail(10.0)
        assert disk.state is DiskState.FAILED and not disk.is_available
        disk.replace(20.0)
        assert disk.state is DiskState.OPERATIONAL
        assert disk.failure_count == 1

    def test_rebuild_path(self):
        disk = Disk("d0")
        disk.fail(5.0)
        disk.start_rebuild(6.0)
        assert disk.state is DiskState.REBUILDING and not disk.is_available
        disk.complete_rebuild(16.0)
        assert disk.is_available

    def test_wrong_removal_and_reinsert(self):
        disk = Disk("d0")
        disk.wrongly_remove(3.0)
        assert disk.state is DiskState.WRONGLY_REMOVED
        assert disk.wrong_removal_count == 1
        disk.reinsert(4.0)
        assert disk.is_available

    def test_invalid_transitions_rejected(self):
        disk = Disk("d0")
        with pytest.raises(StorageModelError):
            disk.reinsert(1.0)
        disk.fail(1.0)
        with pytest.raises(StorageModelError):
            disk.wrongly_remove(2.0)
        with pytest.raises(StorageModelError):
            disk.complete_rebuild(2.0)

    def test_time_cannot_go_backwards(self):
        disk = Disk("d0")
        disk.fail(10.0)
        with pytest.raises(StorageModelError):
            disk.replace(5.0)

    def test_empty_id_rejected(self):
        with pytest.raises(StorageModelError):
            Disk("")

    def test_sample_time_to_failure_uses_distribution(self, rng):
        params = DiskParameters(failure_distribution=Exponential(1.0))
        disk = Disk("d0", params)
        samples = [disk.sample_time_to_failure(rng) for _ in range(2000)]
        assert np.mean(samples) == pytest.approx(1.0, rel=0.1)

    def test_disk_parameters_validation(self):
        with pytest.raises(StorageModelError):
            DiskParameters(capacity_gb=0.0)
        with pytest.raises(StorageModelError):
            DiskParameters(lse_rate_per_hour=-1.0)

    def test_weibull_failure_distribution_accepted(self, rng):
        params = DiskParameters(failure_distribution=Weibull(shape=1.2, scale=1e5))
        disk = Disk("d0", params)
        assert disk.sample_time_to_failure(rng) > 0.0


class TestRaidGeometry:
    def test_raid5_3_plus_1(self):
        geometry = RaidGeometry.raid5(3)
        assert geometry.n_disks == 4
        assert geometry.data_disks == 3
        assert geometry.parity_disks == 1
        assert geometry.fault_tolerance == 1
        assert geometry.label == "RAID5(3+1)"
        assert geometry.effective_replication_factor == pytest.approx(4 / 3)

    def test_raid1_mirror(self):
        geometry = RaidGeometry.raid1(2)
        assert geometry.n_disks == 2
        assert geometry.data_disks == 1
        assert geometry.effective_replication_factor == pytest.approx(2.0)
        assert geometry.label == "RAID1(1+1)"

    def test_raid6(self):
        geometry = RaidGeometry.raid6(6)
        assert geometry.n_disks == 8
        assert geometry.fault_tolerance == 2
        assert geometry.effective_replication_factor == pytest.approx(8 / 6)

    def test_raid0_and_raid10(self):
        assert RaidGeometry.raid0(4).fault_tolerance == 0
        raid10 = RaidGeometry.raid10(3)
        assert raid10.n_disks == 6 and raid10.data_disks == 3

    def test_paper_erf_values(self):
        labels = {g.label: g.effective_replication_factor for g in paper_configurations()}
        assert labels["RAID1(1+1)"] == pytest.approx(2.0)
        assert labels["RAID5(3+1)"] == pytest.approx(1.333, rel=1e-3)
        assert labels["RAID5(7+1)"] == pytest.approx(1.143, rel=1e-3)

    @pytest.mark.parametrize(
        "label,expected_disks",
        [("RAID5(3+1)", 4), ("RAID5(7+1)", 8), ("RAID1(1+1)", 2), ("RAID6(6+2)", 8), ("raid0(5)", 5)],
    )
    def test_from_label(self, label, expected_disks):
        assert RaidGeometry.from_label(label).n_disks == expected_disks

    def test_from_label_invalid(self):
        with pytest.raises(RaidConfigurationError):
            RaidGeometry.from_label("RAIDX(3+1)")
        with pytest.raises(RaidConfigurationError):
            RaidGeometry.from_label("RAID5")

    def test_survives(self):
        geometry = RaidGeometry.raid5(3)
        assert geometry.survives(0) and geometry.survives(1)
        assert not geometry.survives(2)
        with pytest.raises(RaidConfigurationError):
            geometry.survives(-1)

    def test_capacity_helpers(self):
        geometry = RaidGeometry.raid5(3)
        assert geometry.usable_capacity_gb(4000) == pytest.approx(12_000)
        assert geometry.raw_capacity_gb(4000) == pytest.approx(16_000)
        assert geometry.rebuild_read_gb(4000) == pytest.approx(12_000)
        assert RaidGeometry.raid1(2).rebuild_read_gb(4000) == pytest.approx(4000)

    def test_capacity_validation(self):
        with pytest.raises(RaidConfigurationError):
            RaidGeometry.raid5(3).usable_capacity_gb(0.0)

    def test_invalid_counts(self):
        with pytest.raises(RaidConfigurationError):
            RaidGeometry.raid5(1)
        with pytest.raises(RaidConfigurationError):
            RaidGeometry.raid1(1)

    def test_describe(self):
        payload = RaidGeometry.raid5(7).describe()
        assert payload["label"] == "RAID5(7+1)"
        assert payload["level"] == RaidLevel.RAID5.value
        assert payload["erf"] == pytest.approx(8 / 7)
