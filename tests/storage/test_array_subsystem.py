"""Unit tests for the disk array state machine and multi-array subsystem."""

from __future__ import annotations

import pytest

from repro.exceptions import StorageModelError
from repro.storage import DiskArray, DiskState, DiskSubsystem, RaidGeometry


@pytest.fixture
def raid5_array() -> DiskArray:
    return DiskArray("a0", RaidGeometry.raid5(3), hot_spares=1)


class TestArrayHealth:
    def test_initially_accessible(self, raid5_array):
        assert raid5_array.is_data_accessible()
        assert raid5_array.missing_disks() == 0
        assert raid5_array.available_spares() == 1

    def test_single_failure_keeps_data_accessible(self, raid5_array, rng):
        raid5_array.fail_disk(10.0, rng=rng)
        assert raid5_array.missing_disks() == 1
        assert raid5_array.is_data_accessible()

    def test_double_failure_loses_access(self, raid5_array, rng):
        raid5_array.fail_disk(10.0, rng=rng)
        raid5_array.fail_disk(11.0, rng=rng)
        assert raid5_array.missing_disks() == 2
        assert not raid5_array.is_data_accessible()

    def test_wrong_removal_counts_as_missing(self, raid5_array, rng):
        raid5_array.fail_disk(10.0, rng=rng)
        raid5_array.wrongly_remove_disk(11.0, rng=rng)
        assert raid5_array.missing_disks() == 2
        assert not raid5_array.is_data_accessible()
        assert len(raid5_array.wrongly_removed_disks()) == 1

    def test_reinsert_restores_access(self, raid5_array, rng):
        raid5_array.fail_disk(10.0, rng=rng)
        wrong = raid5_array.wrongly_remove_disk(11.0, rng=rng)
        raid5_array.reinsert_disk(12.0, wrong)
        assert raid5_array.is_data_accessible()

    def test_rebuild_cycle(self, raid5_array, rng):
        failed = raid5_array.fail_disk(10.0, rng=rng)
        raid5_array.start_rebuild(11.0, failed)
        assert raid5_array.count_in_state(DiskState.REBUILDING) == 1
        raid5_array.complete_rebuild(21.0, failed)
        assert raid5_array.missing_disks() == 0

    def test_status_snapshot(self, raid5_array, rng):
        raid5_array.fail_disk(10.0, rng=rng)
        status = raid5_array.status(10.5)
        assert status.failed_disks == 1
        assert status.operational_disks == 3
        assert status.data_accessible

    def test_restore_all(self, raid5_array, rng):
        raid5_array.fail_disk(10.0, rng=rng)
        raid5_array.fail_disk(11.0, rng=rng)
        raid5_array.restore_all(50.0)
        assert raid5_array.missing_disks() == 0

    def test_state_histogram(self, raid5_array, rng):
        raid5_array.fail_disk(10.0, rng=rng)
        histogram = raid5_array.state_histogram()
        assert histogram["failed"] == 1
        assert histogram["operational"] == 3

    def test_fail_all_disks_then_error(self, raid5_array, rng):
        for _ in range(4):
            raid5_array.fail_disk(10.0, rng=rng)
        with pytest.raises(StorageModelError):
            raid5_array.fail_disk(11.0, rng=rng)

    def test_disk_lookup(self, raid5_array):
        disk = raid5_array.disks[0]
        assert raid5_array.disk(disk.disk_id) is disk
        with pytest.raises(StorageModelError):
            raid5_array.disk("missing")

    def test_invalid_construction(self):
        with pytest.raises(StorageModelError):
            DiskArray("", RaidGeometry.raid5(3))
        with pytest.raises(StorageModelError):
            DiskArray("a", RaidGeometry.raid5(3), hot_spares=-1)


class TestSpares:
    def test_allocate_and_exhaust(self, raid5_array):
        spare = raid5_array.allocate_spare(5.0)
        assert spare is not None
        assert raid5_array.available_spares() == 0
        assert raid5_array.allocate_spare(6.0) is None

    def test_release_spare(self, raid5_array):
        spare = raid5_array.allocate_spare(5.0)
        raid5_array.release_spare(6.0, spare)
        assert raid5_array.available_spares() == 1

    def test_add_spare(self, raid5_array):
        raid5_array.add_spare(5.0)
        assert raid5_array.available_spares() == 2

    def test_release_foreign_disk_rejected(self, raid5_array):
        with pytest.raises(StorageModelError):
            raid5_array.release_spare(1.0, raid5_array.disks[0])


class TestSubsystem:
    def test_for_usable_capacity(self):
        subsystem = DiskSubsystem.for_usable_capacity(RaidGeometry.raid5(3), usable_disks=21)
        assert subsystem.n_arrays == 7
        assert subsystem.total_disks == 28
        assert subsystem.usable_disks == 21
        assert subsystem.effective_replication_factor == pytest.approx(4 / 3)

    def test_capacity_must_divide(self):
        with pytest.raises(StorageModelError):
            DiskSubsystem.for_usable_capacity(RaidGeometry.raid5(3), usable_disks=20)

    def test_raid1_needs_more_disks_for_same_capacity(self):
        mirror = DiskSubsystem.for_usable_capacity(RaidGeometry.raid1(2), usable_disks=21)
        parity = DiskSubsystem.for_usable_capacity(RaidGeometry.raid5(7), usable_disks=21)
        assert mirror.total_disks == 42
        assert parity.total_disks == 24
        assert mirror.total_disks > parity.total_disks

    def test_aggregate_availability_series(self):
        subsystem = DiskSubsystem(RaidGeometry.raid5(3), n_arrays=7)
        aggregated = subsystem.aggregate_availability(0.999, disk_failure_rate_per_hour=1e-6)
        assert aggregated.subsystem_availability == pytest.approx(0.999 ** 7, rel=1e-9)
        assert aggregated.expected_disk_failures_per_year == pytest.approx(28 * 1e-6 * 8760)

    def test_aggregate_mixed(self):
        subsystem = DiskSubsystem(RaidGeometry.raid5(3), n_arrays=3)
        value = subsystem.aggregate_mixed_availability([0.9, 0.99, 0.999])
        assert value == pytest.approx(0.9 * 0.99 * 0.999)
        with pytest.raises(StorageModelError):
            subsystem.aggregate_mixed_availability([0.9])

    def test_arrays_materialised_lazily(self):
        subsystem = DiskSubsystem(RaidGeometry.raid1(2), n_arrays=4, hot_spares_per_array=1)
        arrays = subsystem.arrays()
        assert len(arrays) == 4
        assert all(a.available_spares() == 1 for a in arrays)
        assert subsystem.total_spares == 4

    def test_describe(self):
        payload = DiskSubsystem(RaidGeometry.raid5(7), n_arrays=3).describe()
        assert payload["n_arrays"] == 3
        assert payload["total_disks"] == 24

    def test_invalid_construction(self):
        with pytest.raises(StorageModelError):
            DiskSubsystem(RaidGeometry.raid5(3), n_arrays=0)
