"""Unit tests for rebuild models, backup system and latent sector errors."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import StorageModelError
from repro.storage import (
    BackupSystem,
    BandwidthRebuildModel,
    FixedRebuildModel,
    LatentSectorErrorModel,
    LseParameters,
    RaidGeometry,
    RateRebuildModel,
)


class TestRebuildModels:
    def test_rate_rebuild_mean(self, rng):
        model = RateRebuildModel(0.1)
        assert model.mean_hours() == pytest.approx(10.0)
        assert model.equivalent_rate() == pytest.approx(0.1)
        samples = [model.sample_hours(rng) for _ in range(5000)]
        assert np.mean(samples) == pytest.approx(10.0, rel=0.1)

    def test_fixed_rebuild(self, rng):
        model = FixedRebuildModel(10.0)
        assert model.mean_hours() == 10.0
        assert model.sample_hours(rng) == 10.0
        assert model.as_distribution().mean() == pytest.approx(10.0)

    def test_bandwidth_rebuild_mean(self):
        model = BandwidthRebuildModel(
            RaidGeometry.raid5(3), disk_capacity_gb=4000.0, rebuild_bandwidth_mb_s=100.0
        )
        expected_hours = 4000.0 * 1024.0 / 100.0 / 3600.0
        assert model.mean_hours() == pytest.approx(expected_hours)

    def test_bandwidth_rebuild_load_factor(self):
        fast = BandwidthRebuildModel(RaidGeometry.raid5(3), 4000.0, 100.0)
        slow = BandwidthRebuildModel(RaidGeometry.raid5(3), 4000.0, 100.0, foreground_load_factor=3.0)
        assert slow.mean_hours() == pytest.approx(3.0 * fast.mean_hours())

    def test_bandwidth_rebuild_jitter(self, rng):
        model = BandwidthRebuildModel(RaidGeometry.raid5(3), 4000.0, 100.0, jitter_cv=0.3)
        samples = [model.sample_hours(rng) for _ in range(2000)]
        assert np.mean(samples) == pytest.approx(model.mean_hours(), rel=0.1)

    def test_validation(self):
        with pytest.raises(StorageModelError):
            RateRebuildModel(0.0)
        with pytest.raises(StorageModelError):
            FixedRebuildModel(-1.0)
        with pytest.raises(StorageModelError):
            BandwidthRebuildModel(RaidGeometry.raid5(3), 0.0, 100.0)
        with pytest.raises(StorageModelError):
            BandwidthRebuildModel(RaidGeometry.raid5(3), 4000.0, 100.0, foreground_load_factor=0.5)


class TestBackupSystem:
    def test_from_rate_matches_paper_mu_ddf(self, rng):
        backup = BackupSystem.from_rate(0.03)
        assert backup.mean_recovery_hours() == pytest.approx(1 / 0.03)
        assert backup.equivalent_rate() == pytest.approx(0.03)
        samples = [backup.sample_recovery_hours(rng) for _ in range(3000)]
        assert np.mean(samples) == pytest.approx(1 / 0.03, rel=0.1)
        assert backup.restores_performed == 3000

    def test_fixed_duration(self, rng):
        backup = BackupSystem.from_fixed_duration(24.0)
        assert backup.sample_recovery_hours(rng) == 24.0

    def test_from_capacity(self):
        backup = BackupSystem.from_capacity(12_000.0, restore_bandwidth_mb_s=200.0)
        expected = 12_000.0 * 1024.0 / 200.0 / 3600.0
        assert backup.mean_recovery_hours() == pytest.approx(expected)

    def test_validation(self):
        with pytest.raises(StorageModelError):
            BackupSystem.from_rate(0.0)
        with pytest.raises(StorageModelError):
            BackupSystem.from_fixed_duration(-1.0)
        with pytest.raises(StorageModelError):
            BackupSystem.from_capacity(0.0, 100.0)


class TestLatentSectorErrors:
    def test_rate_conversion(self):
        model = LatentSectorErrorModel(LseParameters(errors_per_disk_year=2.0))
        assert model.rate_per_hour() == pytest.approx(2.0 / 8760.0)
        assert model.expected_errors(8760.0) == pytest.approx(2.0)

    def test_scrubbing_caps_exposure(self):
        model = LatentSectorErrorModel(LseParameters(scrub_interval_hours=100.0))
        assert model.effective_exposure_hours(10_000.0) == pytest.approx(50.0)
        no_scrub = LatentSectorErrorModel(LseParameters(scrub_interval_hours=0.0))
        assert no_scrub.effective_exposure_hours(10_000.0) == pytest.approx(10_000.0)

    def test_probability_monotone_in_exposure(self):
        model = LatentSectorErrorModel(LseParameters(scrub_interval_hours=0.0))
        assert model.probability_of_lse(10.0) < model.probability_of_lse(1000.0)

    def test_rebuild_block_probability_monotone_in_disks(self):
        model = LatentSectorErrorModel()
        few = model.probability_rebuild_blocked(3, rebuild_hours=10.0)
        many = model.probability_rebuild_blocked(7, rebuild_hours=10.0)
        assert 0.0 <= few <= many <= 1.0

    def test_sample_error_count(self, rng):
        model = LatentSectorErrorModel(LseParameters(errors_per_disk_year=5.0, scrub_interval_hours=0.0))
        counts = [model.sample_error_count(8760.0, rng) for _ in range(2000)]
        assert np.mean(counts) == pytest.approx(5.0, rel=0.15)

    def test_validation(self):
        with pytest.raises(StorageModelError):
            LseParameters(errors_per_disk_year=-1.0)
        model = LatentSectorErrorModel()
        with pytest.raises(StorageModelError):
            model.expected_errors(-1.0)
        with pytest.raises(StorageModelError):
            model.probability_rebuild_blocked(0, 10.0)
