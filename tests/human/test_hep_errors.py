"""Unit tests for hep data and the human error taxonomy."""

from __future__ import annotations

import pytest

from repro.exceptions import HumanErrorModelError
from repro.human import (
    HEP_REFERENCE_BANDS,
    PAPER_HEP_VALUES,
    HumanErrorEvent,
    HumanErrorLog,
    HumanErrorProbability,
    HumanErrorType,
    adjust_with_performance_shaping_factors,
    expected_errors_per_year,
    hep_from_observations,
    paper_hep_probabilities,
)


class TestHumanErrorProbability:
    def test_paper_values(self):
        assert PAPER_HEP_VALUES == (0.0, 0.001, 0.01)
        values = [h.value for h in paper_hep_probabilities()]
        assert values == [0.0, 0.001, 0.01]

    def test_complement(self):
        assert HumanErrorProbability(0.01).complement() == pytest.approx(0.99)

    def test_validation(self):
        with pytest.raises(HumanErrorModelError):
            HumanErrorProbability(1.5)
        with pytest.raises(HumanErrorModelError):
            HumanErrorProbability(-0.1)

    def test_reference_bands(self):
        hep = HumanErrorProbability(0.005)
        assert hep.is_within_band("enterprise_with_procedures")
        assert hep.is_within_band("general_manual_task")
        assert not hep.is_within_band("skill_based_routine")
        with pytest.raises(HumanErrorModelError):
            hep.is_within_band("unknown_band")

    def test_bands_are_consistent(self):
        for low, high in HEP_REFERENCE_BANDS.values():
            assert 0.0 < low < high <= 1.0

    def test_paper_sweep_values_inside_paper_band(self):
        low, high = HEP_REFERENCE_BANDS["general_manual_task"]
        for value in PAPER_HEP_VALUES[1:]:
            assert low <= value <= high


class TestHraHelpers:
    def test_performance_shaping_factors(self):
        adjusted = adjust_with_performance_shaping_factors(0.001, {"stress": 5.0, "checklist": 0.5})
        assert adjusted == pytest.approx(0.0025)

    def test_psf_capped(self):
        assert adjust_with_performance_shaping_factors(0.5, {"stress": 10.0}) == 1.0

    def test_psf_validation(self):
        with pytest.raises(HumanErrorModelError):
            adjust_with_performance_shaping_factors(2.0, {})
        with pytest.raises(HumanErrorModelError):
            adjust_with_performance_shaping_factors(0.1, {"bad": 0.0})

    def test_hep_from_observations(self):
        hep = hep_from_observations(3, 1000)
        assert hep.value == pytest.approx(0.003)
        with pytest.raises(HumanErrorModelError):
            hep_from_observations(5, 0)
        with pytest.raises(HumanErrorModelError):
            hep_from_observations(11, 10)

    def test_expected_errors_per_year_exascale(self):
        # The paper's motivation: an exa-scale centre sees >8760 replacements
        # a year, so even hep = 0.001 means multiple errors per year.
        errors = expected_errors_per_year(0.001, interventions_per_year=8760.0)
        assert errors == pytest.approx(8.76)
        with pytest.raises(HumanErrorModelError):
            expected_errors_per_year(2.0, 100.0)


class TestErrorTaxonomy:
    def test_event_lifecycle(self):
        event = HumanErrorEvent(
            time=10.0,
            error_type=HumanErrorType.WRONG_DISK_REPLACEMENT,
            array_id="a0",
            caused_data_unavailability=True,
        )
        assert event.outstanding
        event.mark_recovered(12.5)
        assert not event.outstanding
        assert event.recovery_duration == pytest.approx(2.5)

    def test_recovery_before_error_rejected(self):
        event = HumanErrorEvent(time=10.0, error_type=HumanErrorType.OMISSION, array_id="a0")
        with pytest.raises(ValueError):
            event.mark_recovered(5.0)

    def test_log_counting(self):
        log = HumanErrorLog()
        log.record(
            HumanErrorEvent(1.0, HumanErrorType.WRONG_DISK_REPLACEMENT, "a0",
                            caused_data_unavailability=True)
        )
        log.record(
            HumanErrorEvent(2.0, HumanErrorType.WRONG_SCRIPT_EXECUTION, "a0",
                            caused_data_unavailability=True, caused_data_loss=True)
        )
        log.record(HumanErrorEvent(3.0, HumanErrorType.OMISSION, "a1"))
        assert log.count() == 3
        assert log.count(HumanErrorType.WRONG_DISK_REPLACEMENT) == 1
        assert log.count_causing_unavailability() == 2
        assert log.count_causing_data_loss() == 1
        assert len(log.outstanding()) == 3
        assert log.by_type()["omission"] == 1
