"""Unit tests for the operator model, replacement policies and error recovery."""

from __future__ import annotations

import numpy as np
import pytest

from repro.distributions import Exponential
from repro.exceptions import HumanErrorModelError
from repro.human import (
    AutomaticFailoverPolicy,
    ConventionalReplacementPolicy,
    HumanErrorRecoveryModel,
    Operator,
    PolicyKind,
    make_policy,
)


class TestOperator:
    def test_error_frequency_matches_hep(self, rng):
        operator = Operator(hep=0.2)
        outcomes = [operator.attempt_replacement(rng) for _ in range(5000)]
        error_rate = sum(1 for o in outcomes if o.human_error) / len(outcomes)
        assert error_rate == pytest.approx(0.2, abs=0.02)
        assert operator.actions_performed == 5000
        assert operator.observed_error_rate() == pytest.approx(error_rate)

    def test_zero_hep_never_errs(self, rng):
        operator = Operator(hep=0.0)
        assert all(not operator.attempt_replacement(rng).human_error for _ in range(500))

    def test_durations_follow_distribution(self, rng):
        operator = Operator(hep=0.0, replacement_time=Exponential(0.1))
        durations = [operator.attempt_replacement(rng).duration_hours for _ in range(3000)]
        assert np.mean(durations) == pytest.approx(10.0, rel=0.1)

    def test_recovery_attempt_uses_recovery_time(self, rng):
        operator = Operator(hep=0.0, error_recovery_time=Exponential(1.0))
        durations = [operator.attempt_error_recovery(rng).duration_hours for _ in range(3000)]
        assert np.mean(durations) == pytest.approx(1.0, rel=0.1)

    def test_paper_defaults(self):
        operator = Operator(hep=0.001)
        assert operator.replacement_time.mean() == pytest.approx(10.0)
        assert operator.error_recovery_time.mean() == pytest.approx(1.0)

    def test_invalid_hep(self):
        with pytest.raises(HumanErrorModelError):
            Operator(hep=1.5)

    def test_requires_generator(self):
        with pytest.raises(HumanErrorModelError):
            Operator(hep=0.1).attempt_replacement("not-a-rng")  # type: ignore[arg-type]


class TestPolicies:
    def test_conventional_always_dispatches_human(self):
        policy = ConventionalReplacementPolicy()
        decision = policy.on_disk_failure(spares_available=3, rebuild_in_progress=False)
        assert decision.start_human_replacement and not decision.start_spare_rebuild
        assert policy.allows_replacement_during_rebuild()

    def test_failover_prefers_spare(self):
        policy = AutomaticFailoverPolicy()
        decision = policy.on_disk_failure(spares_available=1, rebuild_in_progress=False)
        assert decision.start_spare_rebuild and not decision.start_human_replacement
        assert not policy.allows_replacement_during_rebuild()

    def test_failover_falls_back_without_spare(self):
        policy = AutomaticFailoverPolicy()
        decision = policy.on_disk_failure(spares_available=0, rebuild_in_progress=False)
        assert decision.start_human_replacement

    def test_strict_failover_waits(self):
        policy = AutomaticFailoverPolicy(require_spare=False)
        decision = policy.on_disk_failure(spares_available=0, rebuild_in_progress=False)
        assert not decision.start_human_replacement and not decision.start_spare_rebuild

    def test_negative_spares_rejected(self):
        with pytest.raises(HumanErrorModelError):
            AutomaticFailoverPolicy().on_disk_failure(spares_available=-1, rebuild_in_progress=False)

    def test_make_policy(self):
        assert isinstance(make_policy(PolicyKind.CONVENTIONAL), ConventionalReplacementPolicy)
        assert isinstance(make_policy(PolicyKind.AUTOMATIC_FAILOVER), AutomaticFailoverPolicy)

    def test_labels(self):
        assert "conventional" in ConventionalReplacementPolicy().label
        assert "automatic" in AutomaticFailoverPolicy().label


class TestRecoveryModel:
    def test_mean_outstanding_time_geometric(self):
        model = HumanErrorRecoveryModel(hep=0.5, recovery_time=Exponential(1.0), crash_rate_per_hour=0.0)
        assert model.expected_outstanding_hours() == pytest.approx(2.0)
        certain_failure = HumanErrorRecoveryModel(hep=1.0, crash_rate_per_hour=0.0)
        assert certain_failure.expected_outstanding_hours() == float("inf")

    def test_sample_until_recovered_duration(self, rng):
        model = HumanErrorRecoveryModel(hep=0.0, recovery_time=Exponential(1.0), crash_rate_per_hour=0.0)
        durations = [model.sample_until_recovered(rng).duration_hours for _ in range(3000)]
        assert np.mean(durations) == pytest.approx(1.0, rel=0.1)

    def test_crash_dominates_when_rate_high(self, rng):
        model = HumanErrorRecoveryModel(hep=0.0, recovery_time=Exponential(0.001), crash_rate_per_hour=100.0)
        results = [model.sample_until_recovered(rng) for _ in range(300)]
        crash_fraction = sum(1 for r in results if r.disk_crashed) / len(results)
        assert crash_fraction > 0.9

    def test_no_crash_when_rate_zero(self, rng):
        model = HumanErrorRecoveryModel(hep=0.1, crash_rate_per_hour=0.0)
        assert model.sample_crash_time(rng) is None
        assert all(not model.sample_until_recovered(rng).disk_crashed for _ in range(200))

    def test_hep_one_raises_after_max_attempts(self, rng):
        model = HumanErrorRecoveryModel(hep=1.0, crash_rate_per_hour=0.0)
        with pytest.raises(HumanErrorModelError):
            model.sample_until_recovered(rng, max_attempts=5)

    def test_validation(self):
        with pytest.raises(HumanErrorModelError):
            HumanErrorRecoveryModel(hep=-0.1)
        with pytest.raises(HumanErrorModelError):
            HumanErrorRecoveryModel(hep=0.1, crash_rate_per_hour=-1.0)
