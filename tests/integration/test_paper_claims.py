"""Integration tests asserting the paper's headline claims end to end.

Each test corresponds to a claim made in the paper's abstract/introduction
and exercised through the public API, so a regression in any layer
(distributions, Markov engine, models, comparison) surfaces here.
"""

from __future__ import annotations

import pytest

from repro import (
    MonteCarloConfig,
    PolicyKind,
    RaidGeometry,
    analytical_result,
    compare_equal_capacity,
    paper_parameters,
    run_monte_carlo,
)
from repro.core.comparison import ranking
from repro.core.underestimation import maximum_underestimation


class TestClaimUnderestimation:
    """Claim 1: ignoring human error underestimates downtime by 2-3 orders."""

    def test_underestimation_exceeds_two_orders_of_magnitude(self):
        best = maximum_underestimation(
            paper_parameters(), failure_rates=[5e-8, 1e-7, 1e-6, 5e-6], hep_values=(0.001, 0.01)
        )
        assert best.factor > 100.0

    def test_hep_0_001_costs_at_least_a_quarter_nine_at_paper_rates(self):
        baseline = analytical_result(paper_parameters(hep=0.0), "baseline")
        with_error = analytical_result(paper_parameters(hep=0.001), "conventional")
        assert baseline.nines - with_error.nines > 0.25

    def test_hep_0_01_costs_more_than_one_nine(self):
        baseline = analytical_result(paper_parameters(hep=0.0), "baseline")
        with_error = analytical_result(paper_parameters(hep=0.01), "conventional")
        assert baseline.nines - with_error.nines > 1.0


class TestClaimRaidRankingInversion:
    """Claim 2: the conventional RAID availability ranking can invert."""

    def test_raid1_best_without_human_error(self):
        comparisons = compare_equal_capacity(
            paper_parameters(disk_failure_rate=1e-6, hep=0.0), model="baseline"
        )
        assert ranking(comparisons)[0] == "RAID1(1+1)"

    def test_raid1_can_fall_below_raid5_with_human_error(self):
        comparisons = compare_equal_capacity(
            paper_parameters(disk_failure_rate=1e-6, hep=0.01), model="conventional"
        )
        order = ranking(comparisons)
        assert order.index("RAID1(1+1)") > 0

    def test_inversion_strengthens_at_lower_failure_rates(self):
        def raid1_rank(rate):
            comparisons = compare_equal_capacity(
                paper_parameters(disk_failure_rate=rate, hep=0.01),
                model="conventional",
            )
            return ranking(comparisons).index("RAID1(1+1)")

        assert raid1_rank(1e-7) >= raid1_rank(1e-5)


class TestClaimAutomaticFailover:
    """Claim 3: automatic fail-over recovers most of the lost availability."""

    def test_failover_improves_availability_at_hep_0_01(self):
        params = paper_parameters(hep=0.01)
        conventional = analytical_result(params, "conventional")
        failover = analytical_result(params, "automatic_failover")
        assert conventional.unavailability / failover.unavailability > 5.0

    def test_failover_near_baseline_at_hep_0(self):
        params = paper_parameters(hep=0.0)
        baseline = analytical_result(params, "baseline")
        failover = analytical_result(params, "automatic_failover")
        assert failover.nines == pytest.approx(baseline.nines, abs=0.1)

    def test_failover_advantage_grows_with_hep(self):
        def gain(hep):
            params = paper_parameters(hep=hep)
            c = analytical_result(params, "conventional")
            f = analytical_result(params, "automatic_failover")
            return c.unavailability / f.unavailability

        assert gain(0.01) > gain(0.001)


class TestMonteCarloCrossValidation:
    """Fig. 4 claim: the Markov model agrees with the Monte Carlo reference."""

    @pytest.mark.parametrize("hep", [0.01, 0.05])
    def test_markov_inside_or_near_mc_interval(self, hep):
        # Exaggerated failure rate keeps the MC variance manageable in CI.
        params = paper_parameters(disk_failure_rate=1e-4, hep=hep)
        markov = analytical_result(params, "conventional")
        mc = run_monte_carlo(
            MonteCarloConfig(
                params=params,
                policy=PolicyKind.CONVENTIONAL,
                n_iterations=5000,
                horizon_hours=87_600.0,
                seed=19,
            )
        )
        assert mc.unavailability == pytest.approx(markov.unavailability, rel=0.2)

    def test_failover_policy_cross_validation(self):
        params = paper_parameters(disk_failure_rate=1e-4, hep=0.05)
        markov = analytical_result(params, "automatic_failover")
        mc = run_monte_carlo(
            MonteCarloConfig(
                params=params,
                policy=PolicyKind.AUTOMATIC_FAILOVER,
                n_iterations=5000,
                horizon_hours=87_600.0,
                seed=23,
            )
        )
        assert mc.unavailability == pytest.approx(markov.unavailability, rel=0.35)


class TestEndToEndApi:
    def test_public_api_round_trip(self):
        params = paper_parameters(geometry=RaidGeometry.raid5(7), hep=0.01)
        result = analytical_result(params, "conventional")
        assert 0.0 < result.availability < 1.0
        from repro.core.policies import resolve_policy

        chain = resolve_policy("conventional").build_chain(params)
        assert chain.has_state("DU")

    def test_version_exposed(self):
        import repro

        assert repro.__version__ == "1.0.0"
