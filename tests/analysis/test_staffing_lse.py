"""Unit tests for the fleet-workload and LSE extension analyses."""

from __future__ import annotations

import pytest

from repro.analysis import (
    availability_with_lse,
    downtime_saved_by_policy,
    downtime_saved_by_training,
    exascale_motivation,
    fleet_workload,
    lse_impact,
    scrubbing_benefit,
)
from repro.core.policies import resolve_policy
from repro.core.models.raid5_conventional import conventional_availability
from repro.core.parameters import paper_parameters
from repro.exceptions import ConfigurationError
from repro.storage.lse import LseParameters
from repro.storage.raid import RaidGeometry


class TestFleetWorkload:
    def test_exascale_motivation_matches_paper_arithmetic(self):
        stats = exascale_motivation(disks=1_000_000, disk_failure_rate=1e-6, hep=0.001)
        # The paper: "one should expect at least a disk failure per hour" and
        # "multiple human errors a day" at the larger hep values.
        assert stats["failures_per_hour"] == pytest.approx(1.0)
        assert stats["failures_per_year"] == pytest.approx(8760.0)
        assert stats["human_errors_per_year"] == pytest.approx(8.76)
        higher = exascale_motivation(disks=1_000_000, disk_failure_rate=1e-6, hep=0.01)
        assert higher["human_errors_per_day"] > stats["human_errors_per_day"]

    def test_exascale_validation(self):
        with pytest.raises(ConfigurationError):
            exascale_motivation(disks=0)
        with pytest.raises(ConfigurationError):
            exascale_motivation(hep=2.0)

    def test_fleet_workload_counts(self):
        workload = fleet_workload(
            RaidGeometry.raid5(3), paper_parameters(disk_failure_rate=1e-6, hep=0.01),
            usable_disks=300,
        )
        assert workload.total_disks == 400
        assert workload.disk_failures_per_year == pytest.approx(400 * 1e-6 * 8760)
        assert workload.wrong_pulls_per_year == pytest.approx(0.01 * workload.replacements_per_year)
        assert workload.subsystem_downtime_hours_per_year > 0.0

    def test_fleet_workload_validation(self):
        with pytest.raises(ConfigurationError):
            fleet_workload(RaidGeometry.raid5(3), paper_parameters(), usable_disks=0)

    def test_policy_saving_positive_with_human_error(self):
        saving = downtime_saved_by_policy(
            RaidGeometry.raid5(3), paper_parameters(hep=0.01), usable_disks=300
        )
        assert saving["downtime_saved_hours_per_year"] > 0.0
        assert (
            saving["failover_downtime_hours_per_year"]
            < saving["conventional_downtime_hours_per_year"]
        )

    def test_training_saving(self):
        saving = downtime_saved_by_training(
            RaidGeometry.raid5(3), paper_parameters(hep=0.01), usable_disks=300,
            improved_hep=0.001,
        )
        assert saving["downtime_saved_hours_per_year"] > 0.0
        assert saving["wrong_pulls_avoided_per_year"] > 0.0

    def test_training_saving_validation(self):
        with pytest.raises(ConfigurationError):
            downtime_saved_by_training(
                RaidGeometry.raid5(3), paper_parameters(hep=0.001), usable_disks=300,
                improved_hep=0.01,
            )


class TestLseExtension:
    def test_lse_path_reduces_availability(self):
        params = paper_parameters(disk_failure_rate=1e-6, hep=0.001)
        baseline = conventional_availability(params)
        extended = availability_with_lse(
            params, LseParameters(errors_per_disk_year=2.0, scrub_interval_hours=0.0)
        )
        assert extended.availability < baseline.availability

    def test_impact_summary(self):
        impact = lse_impact(
            paper_parameters(disk_failure_rate=1e-6, hep=0.001),
            LseParameters(errors_per_disk_year=2.0, scrub_interval_hours=0.0),
        )
        assert impact.nines_lost > 0.0
        assert 0.0 < impact.lse_blocked_rebuild_probability < 1.0

    def test_scrubbing_recovers_availability(self):
        params = paper_parameters(disk_failure_rate=1e-6, hep=0.001)
        benefit = scrubbing_benefit(params, scrub_intervals_hours=(0.0, 336.0, 24.0))
        assert benefit[24.0] > benefit[336.0] > benefit[0.0]

    def test_zero_lse_rate_matches_baseline(self):
        params = paper_parameters(disk_failure_rate=1e-6, hep=0.001)
        baseline = conventional_availability(params)
        extended = availability_with_lse(
            params, LseParameters(errors_per_disk_year=0.0, scrub_interval_hours=0.0)
        )
        assert extended.availability == pytest.approx(baseline.availability, rel=1e-12)

    def test_lse_model_keeps_hep_zero_supported(self):
        params = paper_parameters(disk_failure_rate=1e-6, hep=0.0)
        result = availability_with_lse(params)
        assert 0.0 < result.availability < 1.0

    def test_raid6_rejected(self):
        with pytest.raises(ConfigurationError):
            availability_with_lse(paper_parameters(geometry=RaidGeometry.raid6(6)))

    def test_conventional_policy_still_resolves(self):
        # sanity: the registry name used by other analyses still resolves
        assert resolve_policy("conventional").name == "conventional"
