"""Unit tests for the sensitivity and inverse-requirements analyses."""

from __future__ import annotations

import pytest

from repro.analysis import (
    dominant_parameter,
    maximum_tolerable_hep,
    nines_gap_to_target,
    one_at_a_time,
    required_repair_rate,
    swing_table,
)
from repro.core.evaluation import analytical_result
from repro.core.parameters import paper_parameters
from repro.exceptions import ConfigurationError


class TestSensitivity:
    def test_entries_sorted_by_swing(self):
        entries = one_at_a_time(paper_parameters(hep=0.01))
        swings = [entry.swing for entry in entries]
        assert swings == sorted(swings, reverse=True)

    def test_every_nonzero_parameter_present(self):
        entries = one_at_a_time(paper_parameters(hep=0.01))
        names = {entry.parameter for entry in entries}
        assert "disk_failure_rate" in names
        assert "hep" in names
        assert "human_error_rate" in names

    def test_zero_valued_parameters_skipped(self):
        entries = one_at_a_time(paper_parameters(hep=0.0))
        names = {entry.parameter for entry in entries}
        assert "hep" not in names

    def test_failure_rate_or_hep_dominates_at_high_hep(self):
        entries = one_at_a_time(paper_parameters(hep=0.01, disk_failure_rate=1e-6))
        assert dominant_parameter(entries) in {"hep", "disk_failure_rate", "human_error_rate"}

    def test_swing_values_positive(self):
        for entry in one_at_a_time(paper_parameters(hep=0.01)):
            assert entry.swing >= 0.0
            assert entry.low_value < entry.high_value

    def test_swing_table_keys(self):
        entries = one_at_a_time(paper_parameters(hep=0.01))
        table = swing_table(entries)
        assert set(table) == {entry.parameter for entry in entries}

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            one_at_a_time(paper_parameters(), factor=1.0)
        with pytest.raises(ConfigurationError):
            one_at_a_time(paper_parameters(), parameters=["unknown"])
        with pytest.raises(ConfigurationError):
            dominant_parameter([])


class TestMaximumTolerableHep:
    def test_result_meets_target(self):
        params = paper_parameters(disk_failure_rate=1e-6)
        target = 7.5
        hep = maximum_tolerable_hep(params, target)
        achieved = analytical_result(params.with_hep(hep), "conventional").nines
        assert achieved == pytest.approx(target, abs=0.05)

    def test_monotone_in_target(self):
        params = paper_parameters(disk_failure_rate=1e-6)
        lenient = maximum_tolerable_hep(params, 6.5)
        strict = maximum_tolerable_hep(params, 7.9)
        assert lenient > strict

    def test_unreachable_target_rejected(self):
        params = paper_parameters(disk_failure_rate=1e-5)
        with pytest.raises(ConfigurationError):
            maximum_tolerable_hep(params, 12.0)

    def test_trivial_target_returns_upper_bound(self):
        params = paper_parameters(disk_failure_rate=1e-7)
        assert maximum_tolerable_hep(params, 0.5) == 1.0

    def test_invalid_target(self):
        with pytest.raises(ConfigurationError):
            maximum_tolerable_hep(paper_parameters(), 0.0)


class TestRequiredRepairRate:
    def test_result_meets_target(self):
        params = paper_parameters(disk_failure_rate=1e-5, hep=0.001)
        target = 6.0
        rate = required_repair_rate(params, target)
        from dataclasses import replace

        achieved = analytical_result(
            replace(params, disk_repair_rate=rate), "conventional"
        ).nines
        assert achieved >= target - 0.05

    def test_stricter_target_needs_faster_repair(self):
        params = paper_parameters(disk_failure_rate=1e-5, hep=0.0)
        assert required_repair_rate(params, 6.5) > required_repair_rate(params, 5.5)

    def test_unreachable_target_rejected(self):
        params = paper_parameters(disk_failure_rate=1e-4, hep=0.01)
        with pytest.raises(ConfigurationError):
            required_repair_rate(params, 12.0)

    def test_invalid_bounds(self):
        with pytest.raises(ConfigurationError):
            required_repair_rate(paper_parameters(), 6.0, rate_bounds=(0.0, 1.0))
        with pytest.raises(ConfigurationError):
            required_repair_rate(paper_parameters(), -1.0)


class TestNinesGap:
    def test_sign_of_gap(self):
        params = paper_parameters(disk_failure_rate=1e-6, hep=0.01)
        achieved = analytical_result(params, "conventional").nines
        assert nines_gap_to_target(params, achieved - 1.0) > 0.0
        assert nines_gap_to_target(params, achieved + 1.0) < 0.0
