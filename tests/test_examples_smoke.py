"""Smoke tests ensuring the example scripts run end to end.

The heavier Monte Carlo example (``failover_policy_study``) is exercised
through its table-building functions rather than its ``main`` so the test
suite stays fast; the others run their actual entry points.
"""

from __future__ import annotations

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"


def _load(name: str):
    spec = importlib.util.spec_from_file_location(f"example_{name}", EXAMPLES_DIR / f"{name}.py")
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    spec.loader.exec_module(module)
    return module


class TestExampleScripts:
    def test_examples_directory_contents(self):
        names = {path.stem for path in EXAMPLES_DIR.glob("*.py")}
        assert {
            "quickstart",
            "datacenter_capacity_planning",
            "failover_policy_study",
            "mc_event_trace",
            "slo_planning",
            "reproduce_paper",
        } <= names

    def test_quickstart_runs(self, capsys):
        _load("quickstart").main()
        out = capsys.readouterr().out
        assert "traditional (human error ignored)" in out
        assert "underestimates unavailability" in out

    def test_capacity_planning_runs(self, capsys):
        _load("datacenter_capacity_planning").main()
        out = capsys.readouterr().out
        assert "RAID1(1+1)" in out and "RAID5(7+1)" in out

    def test_mc_event_trace_runs(self, capsys):
        _load("mc_event_trace").main()
        out = capsys.readouterr().out
        assert "disk_failure" in out and "summary:" in out

    def test_slo_planning_runs(self, capsys):
        _load("slo_planning").main()
        out = capsys.readouterr().out
        assert "Maximum tolerable human error probability" in out
        assert "Sensitivity tornado" in out

    def test_failover_policy_tables(self):
        module = _load("failover_policy_study")
        table = module.analytical_study()
        assert len(table.rows) == len(module.HEP_VALUES)
        gains = [row["unavailability_gain"] for row in table.rows]
        assert gains[-1] > gains[0]

    def test_reproduce_paper_parser(self):
        module = _load("reproduce_paper")
        # The module exposes main() guarded by argparse; just ensure import
        # works and the experiment runner it wraps is callable without MC.
        from repro.experiments import run_all_experiments

        report = run_all_experiments(include_monte_carlo=False)
        assert report.tables
        assert module is not None


@pytest.mark.parametrize("command", [["solve"], ["compare"]])
def test_cli_module_entry(command, capsys):
    """``python -m repro`` style invocation through the main() function."""
    from repro.cli import main

    assert main(command) == 0
    assert capsys.readouterr().out.strip()
