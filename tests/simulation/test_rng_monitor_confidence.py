"""Unit tests for RNG streams, monitors and confidence intervals."""

from __future__ import annotations

import numpy as np
import pytest

from itertools import combinations

from repro.exceptions import SimulationError
from repro.simulation import (
    CounterSet,
    RandomStreams,
    StreamingMoments,
    TimeWeightedValue,
    UpDownMonitor,
    batch_means,
    confidence_interval,
    required_samples,
    t_critical,
)


class TestRandomStreams:
    def test_same_seed_same_draws(self):
        a = RandomStreams(42).stream("failures").random(5)
        b = RandomStreams(42).stream("failures").random(5)
        assert np.allclose(a, b)

    def test_different_streams_differ(self):
        streams = RandomStreams(42)
        a = streams.stream("failures").random(5)
        b = streams.stream("repairs").random(5)
        assert not np.allclose(a, b)

    def test_stream_independent_of_creation_order(self):
        first = RandomStreams(7)
        first.stream("a")
        draw_after_other = first.stream("b").random(3)
        second = RandomStreams(7)
        draw_direct = second.stream("b").random(3)
        assert np.allclose(draw_after_other, draw_direct)

    def test_spawn_child_differs_from_parent(self):
        parent = RandomStreams(3)
        child = parent.spawn_child()
        assert not np.allclose(parent.stream("x").random(4), child.stream("x").random(4))

    def test_grandchild_differs_from_child(self):
        # Regression: children used to be derived from a flat per-instance
        # counter that discarded the parent's spawn_key, so a grandchild's
        # streams were bit-identical to the first child's.
        child = RandomStreams(42).spawn_child()
        grandchild = RandomStreams(42).spawn_child().spawn_child()
        assert not np.allclose(child.stream("x").random(5), grandchild.stream("x").random(5))

    def test_spawn_tree_pairwise_distinct(self):
        # Two-level, four-wide spawn tree: every node's draws must be
        # pairwise distinct (and distinct from the root's).
        root = RandomStreams(42)
        children = [root.spawn_child() for _ in range(4)]
        grandchildren = [child.spawn_child(j) for child in children for j in range(4)]
        draws = [node.stream("montecarlo").random(8) for node in [root] + children + grandchildren]
        for a, b in combinations(draws, 2):
            assert not np.allclose(a, b)

    def test_spawn_child_explicit_index_is_order_independent(self):
        first = RandomStreams(9).spawn_child(3).stream("x").random(4)
        other = RandomStreams(9)
        other.spawn_child(0)
        other.spawn_child(1)
        again = other.spawn_child(3).stream("x").random(4)
        assert np.allclose(first, again)

    def test_mixed_explicit_and_implicit_spawns_do_not_collide(self):
        # Implicit spawns allocate from a disjoint index range, so neither
        # call order can hand out the same family twice.
        parent = RandomStreams(42)
        implicit_first = parent.spawn_child()
        pinned = parent.spawn_child(0)
        assert implicit_first.spawn_key != pinned.spawn_key
        other = RandomStreams(42)
        pinned_first = other.spawn_child(0)
        implicit = other.spawn_child()
        assert implicit.spawn_key != pinned_first.spawn_key
        assert not np.allclose(
            pinned_first.stream("x").random(4), implicit.stream("x").random(4)
        )

    def test_spawn_child_same_explicit_index_is_same_family(self):
        parent = RandomStreams(6)
        assert np.allclose(
            parent.spawn_child(3).stream("x").random(4),
            parent.spawn_child(3).stream("x").random(4),
        )

    def test_spawn_child_invalid_index_rejected(self):
        with pytest.raises(SimulationError):
            RandomStreams(0).spawn_child(-1)
        with pytest.raises(SimulationError):
            RandomStreams(0).spawn_child(1 << 31)

    def test_implicit_child_differs_from_explicit_grandchild(self):
        # Regression: spawn-key elements must each fit one 32-bit word —
        # numpy flattens larger elements into several words, which made an
        # implicit child (old base 2**32 -> words (0, 1)) bit-identical to
        # the explicit grandchild at path (0, 1).
        implicit = RandomStreams(42).spawn_child()
        grandchild = RandomStreams(42).spawn_child(0).spawn_child(1)
        assert not np.allclose(
            implicit.stream("x").random(5), grandchild.stream("x").random(5)
        )

    def test_spawn_key_records_lineage(self):
        root = RandomStreams(5)
        assert root.spawn_key == ()
        assert root.spawn_child(2).spawn_key == (2,)
        assert root.spawn_child(2).spawn_child(7).spawn_key == (2, 7)

    def test_empty_name_rejected(self):
        with pytest.raises(SimulationError):
            RandomStreams(0).stream("")

    def test_known_streams_listing(self):
        streams = RandomStreams(0)
        streams.stream("b")
        streams.stream("a")
        assert streams.known_streams() == ["a", "b"]


class TestTimeWeightedValue:
    def test_piecewise_constant_mean(self):
        monitor = TimeWeightedValue(initial_value=1.0)
        monitor.update(10.0, 0.0)
        monitor.update(15.0, 1.0)
        # 10 hours at 1, 5 hours at 0, then 5 hours at 1 up to t=20.
        assert monitor.mean(20.0) == pytest.approx(15.0 / 20.0)

    def test_backwards_update_rejected(self):
        monitor = TimeWeightedValue()
        monitor.update(5.0, 1.0)
        with pytest.raises(SimulationError):
            monitor.update(4.0, 0.0)


class TestUpDownMonitor:
    def test_availability_accounting(self):
        monitor = UpDownMonitor()
        monitor.mark_down(10.0, cause="human_error")
        monitor.mark_up(12.0)
        monitor.mark_down(50.0, cause="ddf")
        monitor.mark_up(55.0)
        assert monitor.availability(100.0) == pytest.approx(93.0 / 100.0)
        assert monitor.downtime_hours(100.0) == pytest.approx(7.0)
        assert monitor.outage_count() == 2
        assert monitor.outage_durations() == pytest.approx([2.0, 5.0])
        assert monitor.outage_causes() == {"human_error": 1, "ddf": 1}

    def test_idempotent_marks(self):
        monitor = UpDownMonitor()
        monitor.mark_up(5.0)
        monitor.mark_down(10.0)
        monitor.mark_down(11.0)
        monitor.mark_up(12.0)
        assert monitor.outage_count() == 1

    def test_finalize_closes_open_outage(self):
        monitor = UpDownMonitor()
        monitor.mark_down(90.0)
        monitor.finalize(100.0)
        assert monitor.outage_count() == 1
        assert monitor.outage_durations()[0] == pytest.approx(10.0)

    def test_counter_set(self):
        counters = CounterSet()
        counters.increment("disk_failure")
        counters.increment("disk_failure", 2)
        other = CounterSet({"human_error": 1})
        merged = counters.merge(other)
        assert merged.get("disk_failure") == 3
        assert merged.get("human_error") == 1
        assert merged.get("missing") == 0


class TestConfidence:
    def test_interval_contains_true_mean_for_normal_samples(self, rng):
        samples = rng.normal(10.0, 2.0, size=2000)
        interval = confidence_interval(samples, confidence=0.99)
        assert interval.contains(10.0)
        assert interval.lower < interval.mean < interval.upper
        assert interval.n_samples == 2000

    def test_half_width_shrinks_with_samples(self, rng):
        small = confidence_interval(rng.normal(0, 1, 100), 0.95)
        large = confidence_interval(rng.normal(0, 1, 10_000), 0.95)
        assert large.half_width < small.half_width

    def test_t_critical_monotone_in_confidence(self):
        assert t_critical(0.99, 30) > t_critical(0.95, 30)

    def test_t_critical_validation(self):
        with pytest.raises(SimulationError):
            t_critical(1.5, 30)
        with pytest.raises(SimulationError):
            t_critical(0.95, 1)

    def test_confidence_interval_needs_two_samples(self):
        with pytest.raises(SimulationError):
            confidence_interval([1.0])

    def test_required_samples_scales_with_precision(self):
        loose = required_samples(1.0, 0.1, confidence=0.95)
        tight = required_samples(1.0, 0.01, confidence=0.95)
        assert tight > loose
        assert required_samples(0.0, 0.1) == 2

    def test_required_samples_cap(self):
        with pytest.raises(SimulationError):
            required_samples(100.0, 1e-9, max_samples=1000)

    def test_batch_means_shape(self):
        batches = batch_means(list(range(100)), n_batches=10)
        assert batches.shape == (10,)
        assert batches.mean() == pytest.approx(np.mean(range(100)), rel=0.05)

    def test_batch_means_validation(self):
        with pytest.raises(SimulationError):
            batch_means([1, 2, 3], n_batches=10)

    def test_relative_half_width(self, rng):
        interval = confidence_interval(rng.normal(5.0, 0.1, 500))
        assert interval.relative_half_width() < 0.01


class TestStreamingMoments:
    def test_merged_variance_matches_pooled(self, rng):
        chunks = [rng.normal(3.0, 1.5, size=n) for n in (1, 17, 400, 2, 1000)]
        moments = StreamingMoments()
        for chunk in chunks:
            moments.merge(StreamingMoments.from_samples(chunk))
        pooled = np.concatenate(chunks)
        assert moments.n == pooled.size
        assert moments.mean == pytest.approx(float(np.mean(pooled)), abs=1e-12)
        assert moments.variance() == pytest.approx(float(np.var(pooled, ddof=1)), abs=1e-12)

    def test_merge_order_invariant(self, rng):
        chunks = [rng.normal(size=n) for n in (10, 100, 3)]
        forward = StreamingMoments()
        for chunk in chunks:
            forward.merge(StreamingMoments.from_samples(chunk))
        backward = StreamingMoments()
        for chunk in reversed(chunks):
            backward.merge(StreamingMoments.from_samples(chunk))
        assert forward.mean == pytest.approx(backward.mean, abs=1e-12)
        assert forward.variance() == pytest.approx(backward.variance(), abs=1e-12)

    def test_interval_matches_confidence_interval(self, rng):
        samples = rng.normal(10.0, 2.0, size=500)
        direct = confidence_interval(samples, confidence=0.99)
        streamed = StreamingMoments.from_samples(samples).interval(confidence=0.99)
        assert streamed.mean == pytest.approx(direct.mean, abs=1e-12)
        assert streamed.half_width == pytest.approx(direct.half_width, abs=1e-12)
        assert streamed.n_samples == direct.n_samples

    def test_merge_with_empty_is_identity(self, rng):
        moments = StreamingMoments.from_samples(rng.normal(size=50))
        mean, m2 = moments.mean, moments.m2
        moments.merge(StreamingMoments())
        assert (moments.mean, moments.m2) == (mean, m2)
        empty = StreamingMoments()
        empty.merge(StreamingMoments.from_samples([1.0, 2.0]))
        assert empty.n == 2

    def test_too_few_samples_rejected(self):
        with pytest.raises(SimulationError):
            StreamingMoments.from_samples([1.0]).interval()
        with pytest.raises(SimulationError):
            StreamingMoments.from_samples([1.0]).variance()
        with pytest.raises(SimulationError):
            StreamingMoments.from_samples([1.0, float("nan")])
