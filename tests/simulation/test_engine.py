"""Unit tests for the discrete-event simulation engine."""

from __future__ import annotations

import pytest

from repro.exceptions import SimulationError
from repro.simulation import SimulationEngine, make_event


class TestScheduling:
    def test_events_run_in_time_order(self):
        engine = SimulationEngine()
        order = []
        engine.schedule_at(5.0, "b", lambda e: order.append("b"))
        engine.schedule_at(1.0, "a", lambda e: order.append("a"))
        engine.schedule_at(9.0, "c", lambda e: order.append("c"))
        engine.run()
        assert order == ["a", "b", "c"]
        assert engine.events_processed == 3
        assert engine.now == pytest.approx(9.0)

    def test_ties_preserve_insertion_order(self):
        engine = SimulationEngine()
        order = []
        for name in ("first", "second", "third"):
            engine.schedule_at(2.0, name, lambda e, n=name: order.append(n))
        engine.run()
        assert order == ["first", "second", "third"]

    def test_schedule_after_uses_current_time(self):
        engine = SimulationEngine()
        times = []

        def chain(event):
            times.append(engine.now)
            if len(times) < 3:
                engine.schedule_after(1.5, "next", chain)

        engine.schedule_after(1.0, "start", chain)
        engine.run()
        assert times == pytest.approx([1.0, 2.5, 4.0])

    def test_cannot_schedule_in_the_past(self):
        engine = SimulationEngine()
        engine.schedule_at(1.0, "x", lambda e: None)
        engine.run()
        with pytest.raises(SimulationError):
            engine.schedule_at(0.5, "late")
        with pytest.raises(SimulationError):
            engine.schedule_after(-1.0, "negative")

    def test_cancelled_events_are_skipped(self):
        engine = SimulationEngine()
        fired = []
        event = engine.schedule_at(1.0, "x", lambda e: fired.append("x"))
        event.cancel()
        engine.schedule_at(2.0, "y", lambda e: fired.append("y"))
        engine.run()
        assert fired == ["y"]


class TestHorizon:
    def test_horizon_stops_processing(self):
        engine = SimulationEngine(horizon_hours=10.0)
        fired = []
        engine.schedule_at(5.0, "in", lambda e: fired.append("in"))
        engine.schedule_at(15.0, "out", lambda e: fired.append("out"))
        end = engine.run()
        assert fired == ["in"]
        assert end == pytest.approx(10.0)
        assert engine.pending_events == 1

    def test_run_until_argument(self):
        engine = SimulationEngine()
        fired = []
        engine.schedule_at(5.0, "a", lambda e: fired.append("a"))
        engine.schedule_at(20.0, "b", lambda e: fired.append("b"))
        engine.run(until=10.0)
        assert fired == ["a"] and engine.now == pytest.approx(10.0)
        engine.run(until=30.0)
        assert fired == ["a", "b"]

    def test_clock_advances_to_horizon_without_events(self):
        engine = SimulationEngine(horizon_hours=100.0)
        assert engine.run() == pytest.approx(100.0)

    def test_invalid_horizon(self):
        with pytest.raises(SimulationError):
            SimulationEngine(horizon_hours=0.0)

    def test_run_until_before_now_rejected(self):
        engine = SimulationEngine()
        engine.schedule_at(5.0, "a", lambda e: None)
        engine.run()
        with pytest.raises(SimulationError):
            engine.run(until=1.0)


class TestStopAndTrace:
    def test_stop_halts_loop(self):
        engine = SimulationEngine()
        fired = []

        def stopper(event):
            fired.append(event.name)
            engine.stop()

        engine.schedule_at(1.0, "a", stopper)
        engine.schedule_at(2.0, "b", lambda e: fired.append("b"))
        engine.run()
        assert fired == ["a"]

    def test_trace_recording(self):
        engine = SimulationEngine()
        engine.enable_trace()
        engine.schedule_at(3.0, "x", lambda e: engine.record("thing", subject="disk-1", detail=1))
        engine.run()
        assert len(engine.trace) == 1
        record = engine.trace[0]
        assert record.time == pytest.approx(3.0)
        assert "thing" in record.describe()

    def test_trace_disabled_by_default(self):
        engine = SimulationEngine()
        engine.schedule_at(1.0, "x", lambda e: engine.record("ignored"))
        engine.run()
        assert engine.trace == []

    def test_make_event_validation(self):
        with pytest.raises(SimulationError):
            make_event(-1.0)
