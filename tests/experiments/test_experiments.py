"""Unit tests for the experiment (figure reproduction) modules."""

from __future__ import annotations

import pytest

from repro.experiments import (
    FIG5_FIELD_RATES,
    FIG6_FAILURE_RATES,
    HEP_SWEEP,
    fig4_failure_rates,
    fig5_parameter_sets,
    fig6_configurations,
    raid5_3_1_parameters,
)
from repro.experiments.cross_validation import (
    all_within_ci,
    cross_validation_table,
    run_cross_validation,
)
from repro.experiments.fig4_validation import (
    agreement_fraction,
    fig4_table,
    run_fig4_validation,
)
from repro.experiments.fig5_hep_sweep import availability_drops, fig5_table, run_fig5_sweep
from repro.experiments.fig6_raid_comparison import (
    fig6_tables,
    raid1_loses_lead,
    rankings_by_point,
    run_fig6_comparison,
)
from repro.experiments.fig7_failover import (
    fig7_table,
    improvement_by_hep,
    run_fig7_comparison,
)
from repro.experiments.hot_spare import (
    best_pool_size,
    hot_spare_table,
    run_hot_spare_study,
)
from repro.experiments.underestimation import (
    headline_factor,
    run_underestimation_study,
    underestimation_table,
)


class TestConfig:
    def test_hep_sweep_matches_paper(self):
        assert HEP_SWEEP == (0.0, 0.001, 0.01)

    def test_fig6_failure_rates(self):
        assert FIG6_FAILURE_RATES == (1e-5, 1e-6, 1e-7)

    def test_fig4_grid(self):
        rates = fig4_failure_rates(n_points=11)
        assert len(rates) == 11
        assert rates[-1] == pytest.approx(5.5e-6)
        assert rates[0] > 0.0
        with pytest.raises(ValueError):
            fig4_failure_rates(n_points=1)

    def test_fig5_parameter_sets(self):
        sets = fig5_parameter_sets(hep=0.01)
        assert len(sets) == len(FIG5_FIELD_RATES)
        for params in sets.values():
            assert params.hep == 0.01
            assert params.failure_shape > 1.0

    def test_fig6_configurations(self):
        labels = [g.label for g in fig6_configurations()]
        assert labels == ["RAID1(1+1)", "RAID5(3+1)", "RAID5(7+1)"]

    def test_raid5_3_1_parameters(self):
        params = raid5_3_1_parameters(hep=0.01, failure_rate=2e-6)
        assert params.geometry.label == "RAID5(3+1)" and params.hep == 0.01


class TestFig4:
    def test_validation_small_grid(self):
        # The paper's grid needs ~1e6 iterations for tight intervals; the
        # unit test uses exaggerated failure rates so 4000 iterations see
        # enough events for the Markov value to land inside the MC interval.
        points = run_fig4_validation(
            failure_rates=[5e-5, 1e-4],
            hep_values=(0.01,),
            mc_iterations=4000,
            mc_horizon_hours=87_600.0,
            seed=1,
        )
        assert len(points) == 2
        assert agreement_fraction(points) >= 0.5
        table = fig4_table(points)
        assert len(table.rows) == 2
        assert "markov_within_ci" in table.columns
        payload = points[0].as_dict()
        assert "mc_ci_low" in payload


class TestCrossValidation:
    def test_every_dual_face_policy_within_ci(self):
        rows = run_cross_validation(mc_iterations=4000, seed=0)
        assert {row.policy for row in rows} == {
            "baseline", "conventional", "automatic_failover",
        }
        assert all_within_ci(rows)
        for row in rows:
            assert row.mc_ci_low <= row.analytical_availability <= row.mc_ci_high
            assert row.mc_half_width > 0.0
            assert row.n_iterations >= 4000

    def test_table_and_serialisation(self):
        rows = run_cross_validation(mc_iterations=2000, seed=1)
        table = cross_validation_table(rows)
        assert len(table.rows) == len(rows)
        assert "within_ci" in table.columns
        payload = rows[0].as_dict()
        assert {"policy", "analytical_availability", "within_ci"} <= set(payload)

    def test_custom_policy_subset(self):
        rows = run_cross_validation(
            policies=["conventional"], mc_iterations=2000, seed=0
        )
        assert [row.policy for row in rows] == ["conventional"]

    def test_empty_rows_fail_the_acceptance_check(self):
        assert not all_within_ci([])


class TestFig5:
    def test_sweep_shape(self):
        series = run_fig5_sweep()
        assert len(series) == 4
        for entry in series:
            assert entry.hep_values == [0.0, 0.001, 0.01]
            assert len(entry.markov_nines) == 3
            # Availability decreases with hep.
            assert entry.markov_nines[0] >= entry.markov_nines[1] >= entry.markov_nines[2]

    def test_lower_failure_rate_higher_availability(self):
        series = sorted(run_fig5_sweep(), key=lambda s: s.disk_failure_rate)
        assert series[0].markov_nines[0] > series[-1].markov_nines[0]

    def test_drop_grows_for_lower_failure_rates(self):
        series = sorted(run_fig5_sweep(), key=lambda s: s.disk_failure_rate)
        drops = availability_drops(series)
        assert drops[series[0].label] > drops[series[-1].label]

    def test_table_rendering(self):
        table = fig5_table(run_fig5_sweep())
        assert len(table.rows) == 3
        assert len(table.columns) == 5
        with pytest.raises(ValueError):
            fig5_table([])

    def test_surface_matches_per_series_sweep(self):
        # The one-call hep x lambda surface must reproduce the per-rate
        # analytical series exactly (same template engine, same points).
        from repro.experiments.fig5_hep_sweep import fig5_surface_table, run_fig5_surface

        surface = run_fig5_surface()
        series = run_fig5_sweep()
        assert surface.shape == (4, 3)
        for entry, row in zip(series, surface.points):
            for want, point in zip(entry.markov_nines, row):
                assert point.nines == pytest.approx(want, abs=1e-12)
        table = fig5_surface_table(surface)
        assert len(table.rows) == 3 and len(table.columns) == 5

    def test_surface_runs_on_monte_carlo_backend(self):
        from repro.experiments.fig5_hep_sweep import run_fig5_surface

        surface = run_fig5_surface(
            hep_values=[0.0, 0.01],
            failure_rates=[1e-4],
            backend="monte_carlo",
            mc_iterations=400,
            mc_horizon_hours=50_000.0,
            seed=3,
        )
        assert surface.shape == (1, 2)
        for point in surface.row(0):
            assert point.has_interval


class TestFig6:
    @pytest.fixture(scope="class")
    def cells(self):
        return run_fig6_comparison()

    def test_grid_size(self, cells):
        assert len(cells) == 3 * 3 * 3  # rates x heps x configurations

    def test_raid1_best_without_human_error(self, cells):
        for rate in FIG6_FAILURE_RATES:
            assert not raid1_loses_lead(cells, rate, 0.0)

    def test_raid1_not_best_with_human_error_at_low_rates(self, cells):
        assert raid1_loses_lead(cells, 1e-6, 0.01)
        assert raid1_loses_lead(cells, 1e-7, 0.01)

    def test_rankings_exposed(self, cells):
        rankings = rankings_by_point(cells)
        assert rankings["lambda=1e-05 hep=0"][0] == "RAID1(1+1)"
        assert rankings["lambda=1e-06 hep=0.01"][0] != "RAID1(1+1)"

    def test_tables_one_per_rate(self, cells):
        tables = fig6_tables(cells)
        assert len(tables) == 3
        for table in tables:
            assert len(table.rows) == 3

    def test_unknown_point_rejected(self, cells):
        with pytest.raises(ValueError):
            raid1_loses_lead(cells, 123.0, 0.5)


class TestFig7:
    def test_comparison_points(self):
        points = run_fig7_comparison()
        assert [p.hep for p in points] == [0.0, 0.001, 0.01]
        # The policies coincide at hep = 0 and diverge as hep grows.
        assert points[0].improvement_factor == pytest.approx(1.0, rel=0.05)
        assert points[1].improvement_factor > 1.0
        assert points[2].improvement_factor > points[1].improvement_factor

    def test_failover_always_at_least_as_good(self):
        for point in run_fig7_comparison():
            assert point.failover_availability >= point.conventional_availability - 1e-15

    def test_improvement_mapping_and_table(self):
        points = run_fig7_comparison()
        improvements = improvement_by_hep(points)
        assert set(improvements) == {0.0, 0.001, 0.01}
        table = fig7_table(points)
        assert "Delayed-Disk-Replacement" in table.columns
        assert len(table.rows) == 3


class TestHotSpareStudy:
    def test_policy_ladder_and_table(self):
        points = run_hot_spare_study(pool_sizes=(2,), mc_iterations=800, seed=5)
        assert [p.policy for p in points] == [
            "conventional", "automatic_failover", "hot_spare_pool_k2",
        ]
        assert points[0].improvement_over_conventional == pytest.approx(1.0)
        assert all(0.0 < p.availability <= 1.0 for p in points)
        table = hot_spare_table(points)
        assert len(table.rows) == 3
        assert "hot-spare" in table.title
        assert best_pool_size(points) in {0, 1, 2}
        payload = points[-1].as_dict()
        assert payload["n_spares"] == 2


class TestUnderestimation:
    def test_study_and_headline(self):
        study = run_underestimation_study(failure_rates=[1e-7, 1e-6, 1e-5])
        assert set(study) == {0.001, 0.01}
        headline = headline_factor(failure_rates=[1e-7, 1e-6, 1e-5])
        assert headline.factor > 50.0
        table = underestimation_table(study)
        assert len(table.rows) == 6

    def test_headline_exceeds_two_orders_on_default_grid(self):
        assert headline_factor().factor > 100.0
