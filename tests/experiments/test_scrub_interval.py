"""Unit tests for the EXP-SCRUB scrub-interval study."""

from __future__ import annotations

import pytest

from repro.experiments.scrub_interval import (
    SCRUB_PERIODS_HOURS,
    degradation_factor,
    run_scrub_interval_study,
    scrub_interval_table,
)


@pytest.fixture(scope="module")
def points():
    return run_scrub_interval_study(mc_iterations=300, seed=0)


class TestScrubIntervalStudy:
    def test_one_point_per_period_in_order(self, points):
        assert [p.check_period_hours for p in points] == list(SCRUB_PERIODS_HOURS)

    def test_rarer_checks_strictly_degrade_availability(self, points):
        nines = [p.analytical_nines for p in points]
        assert nines == sorted(nines, reverse=True)
        assert nines[0] > nines[-1]

    def test_every_point_is_consistent_across_faces(self, points):
        assert all(p.consistent for p in points)

    def test_mc_intervals_are_ordered(self, points):
        for p in points:
            assert p.mc_ci_low <= p.mc_availability <= p.mc_ci_high
            assert p.n_iterations == 300

    def test_degradation_factor_is_the_headline_ratio(self, points):
        factor = degradation_factor(points)
        ordered = sorted(points, key=lambda p: p.check_period_hours)
        expected = (1.0 - ordered[-1].analytical_availability) / (
            1.0 - ordered[0].analytical_availability
        )
        assert factor == pytest.approx(expected)
        assert factor > 1.0

    def test_degradation_factor_degenerate_inputs(self):
        assert degradation_factor([]) == 1.0

    def test_table_renders_all_rows(self, points):
        rendered = scrub_interval_table(points).render(float_format="{:.4g}")
        assert "EXP-SCRUB" in rendered
        for p in points:
            assert f"{p.check_period_hours:.4g}" in rendered

    def test_as_dict_round_trip(self, points):
        payload = points[0].as_dict()
        assert payload["check_period_hours"] == points[0].check_period_hours
        assert {"analytical_nines", "mc_availability", "consistent"} <= set(payload)
