"""End-to-end tests of the erasure-coded k-of-N redundancy-scheme family."""

from __future__ import annotations

from dataclasses import replace

import numpy as np
import pytest

from repro.core.evaluation import analytical_result, evaluate
from repro.core.montecarlo import MonteCarloConfig, run_monte_carlo
from repro.core.montecarlo.batch import run_stacked
from repro.core.montecarlo.parallel import replay_stacked_point
from repro.core.parameters import paper_parameters
from repro.core.policies import (
    MONTHLY_CHECK_HOURS,
    RedundancyScheme,
    erasure_policy,
    get_policy,
    hot_spare_policy,
    parse_scheme,
)
from repro.exceptions import ConfigurationError
from repro.experiments.cross_validation import run_cross_validation
from repro.simulation.rng import RandomStreams
from repro.storage.raid import RaidGeometry

HORIZON = 87_600.0  # ten years, the paper's mission time


def erasure_params(k, n, rate=1e-3, hep=0.1):
    return paper_parameters(
        geometry=RaidGeometry.erasure(k, n), disk_failure_rate=rate, hep=hep
    )


class TestParseScheme:
    def test_two_part_spec_repairs_any_missing_share(self):
        scheme = parse_scheme("3:10")
        assert (scheme.k, scheme.n_shares, scheme.repair_threshold) == (3, 10, 10)
        assert scheme.check_period_hours == MONTHLY_CHECK_HOURS
        assert scheme.is_periodic

    def test_three_part_spec_pins_the_threshold(self):
        scheme = parse_scheme("3:10:7")
        assert scheme.repair_threshold == 7

    def test_custom_check_period(self):
        scheme = parse_scheme("2:5", check_period_hours=24.0)
        assert scheme.check_period_hours == 24.0

    @pytest.mark.parametrize(
        "spec", ["3", "3:10:7:2", "a:b", "0:10", "3:2", "3:10:2", "11:10"]
    )
    def test_malformed_specs_rejected(self, spec):
        with pytest.raises(ConfigurationError):
            parse_scheme(spec)

    def test_nonpositive_period_rejected(self):
        with pytest.raises(ConfigurationError):
            parse_scheme("3:10", check_period_hours=0.0)


class TestRedundancySchemeResolve:
    def test_unpinned_scheme_derives_from_geometry(self):
        resolved = RedundancyScheme(check_period_hours=730.0).resolve(
            erasure_params(3, 10)
        )
        assert (resolved.n_shares, resolved.k, resolved.repair_threshold) == (10, 3, 10)
        assert resolved.check_period_hours == 730.0
        assert resolved.is_periodic

    def test_continuous_scheme_resolves_without_period(self):
        resolved = RedundancyScheme().resolve(paper_parameters(hep=0.01))
        assert not resolved.is_periodic
        assert resolved.check_period_hours is None

    def test_pinned_share_count_must_match_geometry(self):
        scheme = RedundancyScheme(n_shares=5, k=2, check_period_hours=730.0)
        with pytest.raises(ConfigurationError):
            scheme.resolve(erasure_params(3, 10))

    def test_invalid_ordering_rejected(self):
        params = erasure_params(3, 10)
        with pytest.raises(ConfigurationError):
            RedundancyScheme(k=0, check_period_hours=730.0).resolve(params)
        with pytest.raises(ConfigurationError):
            RedundancyScheme(repair_threshold=2, check_period_hours=730.0).resolve(
                params
            )
        with pytest.raises(ConfigurationError):
            RedundancyScheme(check_period_hours=-1.0).resolve(params)


class TestLegacyPoliciesCarrySchemes:
    """The four legacy policies are re-expressed over RedundancyScheme."""

    LEGACY = ("baseline", "conventional", "automatic_failover", "hot_spare_pool")

    @pytest.mark.parametrize("name", LEGACY)
    def test_scheme_present_and_continuous(self, name):
        policy = get_policy(name)
        assert policy.scheme is not None
        assert not policy.scheme.is_periodic
        assert not policy.has_periodic_checks

    @pytest.mark.parametrize("name", LEGACY)
    def test_scheme_metadata_is_bit_identical_to_schemeless_run(self, name):
        # The continuous schemes are descriptive: stripping them must not
        # change a single drawn lifetime.
        params = paper_parameters(disk_failure_rate=1e-4, hep=0.05)
        policy = get_policy(name)

        def run(p):
            return run_monte_carlo(
                MonteCarloConfig(
                    params=params, policy=p, n_iterations=400,
                    horizon_hours=HORIZON, seed=7,
                )
            )

        with_scheme = run(policy)
        without_scheme = run(replace(policy, scheme=None))
        assert with_scheme.availability == without_scheme.availability
        assert with_scheme.totals == without_scheme.totals

    def test_policies_differing_only_in_scheme_are_unequal(self):
        policy = get_policy("conventional")
        assert replace(policy, scheme=None) != policy


class TestErasurePolicyConstruction:
    def test_pinned_policy_exposes_all_three_faces(self):
        policy = erasure_policy(3, 10, repair_threshold=7)
        assert policy.name == "erasure_3of10"
        assert policy.has_batch_kernel
        assert policy.has_analytical_model
        assert policy.supports_stacked and policy.can_stack
        assert policy.has_periodic_checks
        resolved = policy.scheme.resolve(erasure_params(3, 10))
        assert (resolved.k, resolved.n_shares, resolved.repair_threshold) == (3, 10, 7)

    def test_registered_policy_derives_scheme_from_geometry(self):
        policy = get_policy("erasure")
        assert policy.has_periodic_checks
        resolved = policy.scheme.resolve(erasure_params(4, 6))
        assert (resolved.k, resolved.n_shares, resolved.repair_threshold) == (4, 6, 6)

    def test_invalid_construction_rejected(self):
        with pytest.raises(ConfigurationError):
            erasure_policy(0, 10)
        with pytest.raises(ConfigurationError):
            erasure_policy(3, 10, repair_threshold=2)
        with pytest.raises(ConfigurationError):
            erasure_policy(3, 10, check_period_hours=0.0)

    def test_pinned_policy_rejects_mismatched_geometry(self):
        policy = erasure_policy(3, 10)
        with pytest.raises(ConfigurationError):
            evaluate(
                paper_parameters(disk_failure_rate=1e-3), policy,
                backend="monte_carlo", n_iterations=10, seed=0,
            )

    def test_hot_spare_pool_cannot_stack_schemes(self):
        # Only the erasure family reads per-row scheme planes.
        assert not hot_spare_policy(3).has_periodic_checks


class TestErasureBothFaces:
    """Analytical checker-cycle solver vs the Monte Carlo kernels."""

    SMOKE_GRID = [(2, 5, 4), (3, 10, 7), (4, 6, 6)]

    @pytest.mark.parametrize("k,n,threshold", SMOKE_GRID)
    def test_analytical_within_mc_interval(self, k, n, threshold):
        params = erasure_params(k, n, rate=1e-3, hep=0.1)
        policy = erasure_policy(k, n, repair_threshold=threshold)
        analytical = evaluate(params, policy, backend="analytical")
        mc = evaluate(
            params, policy, backend="monte_carlo",
            n_iterations=3000, seed=0, confidence=0.99,
        )
        assert mc.has_interval
        assert mc.contains(analytical.availability), (
            f"{k}-of-{n} (R={threshold}): analytical {analytical.availability} "
            f"outside [{mc.ci_lower}, {mc.ci_upper}]"
        )

    def test_scalar_and_batch_kernels_statistically_agree(self):
        params = erasure_params(3, 10, rate=1e-3, hep=0.1)
        policy = erasure_policy(3, 10, repair_threshold=7)
        scalar = evaluate(
            params, policy, backend="monte_carlo",
            n_iterations=800, seed=11, executor="scalar",
        )
        batch = evaluate(
            params, policy, backend="monte_carlo",
            n_iterations=800, seed=12, executor="batch",
        )
        assert abs(scalar.availability - batch.availability) <= (
            scalar.half_width + batch.half_width
        )

    def test_crossval_passes_for_erasure_at_event_rich_point(self):
        rows = run_cross_validation(
            params=erasure_params(3, 10, rate=1e-3, hep=0.1),
            policies=["erasure"],
            mc_iterations=3000,
            seed=0,
        )
        assert [row.policy for row in rows] == ["erasure"]
        assert rows[0].within_ci

    def test_default_crossval_set_excludes_periodic_policies(self):
        rows = run_cross_validation(mc_iterations=200, seed=0)
        assert "erasure" not in {row.policy for row in rows}


class TestStackedMixedGeometry:
    """One stacked kernel invocation covering heterogeneous k-of-N layouts."""

    def _configs(self, workers=1, transport="auto"):
        grid = [
            (erasure_params(3, 10, rate=1e-4, hep=0.1)),
            (erasure_params(2, 5, rate=2e-4, hep=0.1)),
            (erasure_params(4, 6, rate=1e-4, hep=0.1)),
        ]
        return [
            MonteCarloConfig(
                params=params, policy="erasure", n_iterations=500,
                horizon_hours=HORIZON, seed=42, workers=workers,
                transport=transport,
            )
            for params in grid
        ]

    def test_mixed_geometries_in_one_grid(self):
        results = run_stacked(self._configs())
        availabilities = [r.availability for r in results]
        # 3-of-10 tolerates seven losses per month: no outage at this rate.
        assert availabilities[0] == 1.0
        assert 0.99 < availabilities[2] < availabilities[1] < 1.0
        for result in results:
            assert result.n_iterations == 500

    def test_worker_count_and_transport_do_not_change_the_draws(self):
        baseline = [r.availability for r in run_stacked(self._configs())]
        for workers, transport in ((2, "pickle"), (2, "auto")):
            got = [
                r.availability
                for r in run_stacked(self._configs(workers=workers, transport=transport))
            ]
            assert got == baseline, f"workers={workers} transport={transport}"

    def test_replay_reproduces_one_point_bit_for_bit(self):
        configs = self._configs()
        grid = run_stacked(configs)
        replayed = replay_stacked_point(configs, 1)
        assert replayed.availability == grid[1].availability
        assert replayed.totals == grid[1].totals

    def test_stacked_matches_per_point_runs_statistically(self):
        configs = self._configs()
        stacked = run_stacked(configs)
        for config, point in zip(configs, stacked):
            alone = run_monte_carlo(config)
            # Different stream layouts, same distribution: the intervals of
            # the two estimates must overlap.
            assert abs(alone.availability - point.availability) <= (
                alone.interval.half_width + point.interval.half_width + 1e-12
            )


class TestMixedSchemePlanes:
    def test_one_batch_call_mixes_check_periods(self):
        # Same geometry and rates, three different scrub cadences, one
        # kernel invocation: availability must fall as checks get rarer.
        from repro.core.policies.stacked import stack_parameter_points
        from repro.core.policies.vectorized import batch_erasure

        params = erasure_params(3, 10, rate=1e-3, hep=0.1)
        periods = (24.0, 730.0, 8760.0)
        schemes = [
            RedundancyScheme(
                n_shares=10, k=3, repair_threshold=7, check_period_hours=period
            )
            for period in periods
        ]
        iterations = 400
        stacked = stack_parameter_points(
            [params] * len(schemes), [iterations] * len(schemes), schemes=schemes
        )
        rng = RandomStreams(5).stream("montecarlo")
        batch = batch_erasure(stacked, HORIZON, len(schemes) * iterations, rng)
        means = [
            float(np.mean(segment))
            for segment in np.split(batch.availabilities(), len(schemes))
        ]
        assert means[0] > means[1] > means[2]
