"""Unit tests for the Monte Carlo availability model."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.evaluation import analytical_result
from repro.core.montecarlo import (
    EpisodeTrace,
    MonteCarloConfig,
    generate_example_trace,
    render_timeline,
    run_monte_carlo,
    run_monte_carlo_with_trace,
    simulate_conventional,
    simulate_failover,
    summarise_trace,
)
from repro.core.montecarlo.results import IterationResult, merge_iteration_counters
from repro.core.parameters import paper_parameters
from repro.exceptions import ConfigurationError, SimulationError
from repro.human.policy import PolicyKind


class TestIterationResult:
    def test_availability_from_downtime(self):
        result = IterationResult(horizon_hours=100.0, downtime_hours=5.0)
        assert result.availability == pytest.approx(0.95)
        assert result.uptime_hours == pytest.approx(95.0)

    def test_downtime_clipped_to_horizon(self):
        result = IterationResult(horizon_hours=100.0, downtime_hours=150.0)
        assert result.availability == 0.0

    def test_merge_counters(self):
        totals = merge_iteration_counters(
            [
                IterationResult(10.0, downtime_hours=1.0, du_events=1, disk_failures=2),
                IterationResult(10.0, downtime_hours=2.0, dl_events=1, human_errors=1),
            ]
        )
        assert totals["downtime_hours"] == pytest.approx(3.0)
        assert totals["du_events"] == 1 and totals["dl_events"] == 1
        assert totals["disk_failures"] == 2 and totals["human_errors"] == 1


class TestConventionalSimulator:
    def test_no_failures_when_rate_tiny(self, rng):
        params = paper_parameters(disk_failure_rate=1e-12)
        result = simulate_conventional(params, 1000.0, rng)
        assert result.disk_failures == 0
        assert result.downtime_hours == 0.0
        assert result.availability == 1.0

    def test_failures_occur_at_high_rate(self, rng):
        params = paper_parameters(disk_failure_rate=1e-3, hep=0.0)
        result = simulate_conventional(params, 50_000.0, rng)
        assert result.disk_failures > 10

    def test_no_human_errors_when_hep_zero(self, rng):
        params = paper_parameters(disk_failure_rate=1e-3, hep=0.0)
        result = simulate_conventional(params, 100_000.0, rng)
        assert result.human_errors == 0
        assert result.du_events == 0

    def test_human_errors_roughly_hep_fraction_of_failures(self, rng):
        params = paper_parameters(disk_failure_rate=5e-4, hep=0.2)
        totals_failures, totals_errors = 0, 0
        for _ in range(60):
            result = simulate_conventional(params, 50_000.0, rng)
            totals_failures += result.disk_failures
            totals_errors += result.human_errors
        assert totals_failures > 500
        ratio = totals_errors / totals_failures
        # Human errors attach to successful replacements, slightly fewer than failures.
        assert ratio == pytest.approx(0.2, abs=0.05)

    def test_downtime_recorded_for_data_loss(self, rng):
        params = paper_parameters(disk_failure_rate=5e-3, hep=0.0)
        result = simulate_conventional(params, 100_000.0, rng)
        assert result.dl_events > 0
        assert result.downtime_hours > 0.0

    def test_invalid_horizon(self, rng):
        with pytest.raises(SimulationError):
            simulate_conventional(paper_parameters(), 0.0, rng)

    def test_trace_records_events(self, rng):
        params = paper_parameters(disk_failure_rate=1e-3, hep=0.3)
        trace = EpisodeTrace()
        simulate_conventional(params, 100_000.0, rng, trace=trace)
        kinds = set(trace.kinds())
        assert "disk_failure" in kinds
        assert kinds & {"rebuild_complete", "human_error", "data_loss"}


class TestFailoverSimulator:
    def test_no_downtime_without_failures(self, rng):
        params = paper_parameters(disk_failure_rate=1e-12)
        result = simulate_failover(params, 1000.0, rng)
        assert result.downtime_hours == 0.0

    def test_runs_with_high_rates(self, rng):
        params = paper_parameters(disk_failure_rate=1e-3, hep=0.05)
        result = simulate_failover(params, 50_000.0, rng)
        assert result.disk_failures > 0

    def test_failover_downtime_below_conventional(self):
        # At a high failure rate and hep, the fail-over policy must show
        # clearly less downtime than the conventional policy.
        params = paper_parameters(disk_failure_rate=2e-4, hep=0.1)
        conv_config = MonteCarloConfig(
            params=params, policy=PolicyKind.CONVENTIONAL,
            n_iterations=1500, horizon_hours=87_600.0, seed=11,
        )
        fo_config = conv_config.with_policy(PolicyKind.AUTOMATIC_FAILOVER)
        conventional = run_monte_carlo(conv_config)
        failover = run_monte_carlo(fo_config)
        assert failover.unavailability < conventional.unavailability


class TestRunner:
    def test_reproducible_with_seed(self):
        config = MonteCarloConfig(
            params=paper_parameters(disk_failure_rate=1e-4, hep=0.05),
            n_iterations=300, horizon_hours=50_000.0, seed=7,
        )
        first = run_monte_carlo(config)
        second = run_monte_carlo(config)
        assert first.availability == pytest.approx(second.availability, rel=0.0)
        assert first.totals == second.totals

    def test_different_seeds_differ(self):
        base = MonteCarloConfig(
            params=paper_parameters(disk_failure_rate=2e-4, hep=0.05),
            n_iterations=300, horizon_hours=50_000.0, seed=1,
        )
        other = base.with_seed(2)
        assert run_monte_carlo(base).totals != run_monte_carlo(other).totals

    def test_agreement_with_markov_at_exaggerated_rates(self):
        # Fast version of the paper's Fig. 4 cross-validation.
        params = paper_parameters(disk_failure_rate=1e-4, hep=0.05)
        markov = analytical_result(params, "conventional")
        mc = run_monte_carlo(
            MonteCarloConfig(params=params, n_iterations=4000, horizon_hours=87_600.0, seed=3)
        )
        assert mc.unavailability == pytest.approx(markov.unavailability, rel=0.25)

    def test_result_accessors(self):
        config = MonteCarloConfig(
            params=paper_parameters(disk_failure_rate=1e-4, hep=0.05),
            n_iterations=500, horizon_hours=50_000.0, seed=5,
        )
        result = run_monte_carlo(config)
        assert 0.0 <= result.unavailability <= 1.0
        assert result.nines > 0.0
        low, high = result.nines_interval
        assert low <= result.nines <= high or np.isclose(low, high)
        assert result.mean_downtime_hours_per_run() >= 0.0
        payload = result.as_dict()
        assert payload["n_iterations"] == 500

    def test_config_validation(self):
        with pytest.raises(ConfigurationError):
            MonteCarloConfig(n_iterations=1)
        with pytest.raises(ConfigurationError):
            MonteCarloConfig(horizon_hours=-1.0)
        with pytest.raises(ConfigurationError):
            MonteCarloConfig(confidence=1.5)

    def test_run_with_trace(self):
        config = MonteCarloConfig(
            params=paper_parameters(disk_failure_rate=1e-3, hep=0.1),
            n_iterations=10, horizon_hours=20_000.0, seed=2,
        )
        result, trace = run_monte_carlo_with_trace(config)
        assert result.n_iterations == 10
        assert len(trace) > 0

    def test_unknown_policy_rejected(self):
        config = MonteCarloConfig(params=paper_parameters(), n_iterations=2)
        object.__setattr__(config, "policy", "bogus")
        with pytest.raises(ConfigurationError):
            run_monte_carlo(config)


class TestExampleTrace:
    def test_example_trace_contains_notable_events(self):
        trace = generate_example_trace(seed=3)
        summary = summarise_trace(trace)
        assert summary["disk_failures"] >= 1
        assert summary["human_errors"] + summary["data_losses"] >= 1

    def test_render_timeline(self):
        trace = generate_example_trace(seed=3)
        text = render_timeline(trace)
        assert "disk_failure" in text
        assert "time (h)" in text

    def test_trace_render_and_len(self):
        trace = generate_example_trace(seed=3)
        assert len(trace.render().splitlines()) == len(trace)
