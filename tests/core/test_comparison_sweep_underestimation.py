"""Unit tests for the comparison, sweep and underestimation analyses."""

from __future__ import annotations

import pytest

from repro.core.comparison import (
    compare_configuration,
    compare_equal_capacity,
    nines_by_configuration,
    ranking,
    ranking_inverted_by_human_error,
)
from repro.core.parameters import paper_parameters
from repro.core.sweep import (
    availability_series,
    nines_series,
    sweep_failure_rate,
    sweep_hep,
    sweep_hep_for_failure_rates,
    sweep_policies,
    x_series,
)
from repro.core.underestimation import (
    maximum_underestimation,
    orders_of_magnitude,
    underestimation_factor,
    underestimation_sweep,
)
from repro.exceptions import ConfigurationError
from repro.storage.raid import RaidGeometry


class TestComparison:
    def test_equal_capacity_defaults_to_paper_trio(self):
        comparisons = compare_equal_capacity(paper_parameters(hep=0.001))
        labels = [c.geometry_label for c in comparisons]
        assert labels == ["RAID1(1+1)", "RAID5(3+1)", "RAID5(7+1)"]
        disks = {c.geometry_label: c.total_disks for c in comparisons}
        assert disks == {"RAID1(1+1)": 42, "RAID5(3+1)": 28, "RAID5(7+1)": 24}

    def test_subsystem_availability_below_array_availability(self):
        comparisons = compare_equal_capacity(paper_parameters(hep=0.001))
        for entry in comparisons:
            assert entry.subsystem_availability <= entry.array_availability

    def test_raid1_wins_without_human_error(self):
        comparisons = compare_equal_capacity(
            paper_parameters(disk_failure_rate=1e-5, hep=0.0), model="baseline"
        )
        assert ranking(comparisons)[0] == "RAID1(1+1)"

    def test_raid1_loses_lead_with_human_error(self):
        # The paper's qualitative claim at lambda = 1e-6 and hep = 0.01.
        comparisons = compare_equal_capacity(
            paper_parameters(disk_failure_rate=1e-6, hep=0.01), model="conventional"
        )
        assert ranking(comparisons)[0] != "RAID1(1+1)"

    def test_ranking_inversion_helper(self):
        result = ranking_inverted_by_human_error(
            paper_parameters(disk_failure_rate=1e-6), hep_with_error=0.01
        )
        assert result["without_human_error"][0] == "RAID1(1+1)"
        assert result["with_human_error"][0] != "RAID1(1+1)"

    def test_single_configuration(self):
        entry = compare_configuration(
            RaidGeometry.raid5(3), paper_parameters(hep=0.001), usable_disks=21
        )
        assert entry.n_arrays == 7
        assert entry.erf == pytest.approx(4 / 3)
        assert entry.as_dict()["configuration"] == "RAID5(3+1)"

    def test_nines_by_configuration(self):
        comparisons = compare_equal_capacity(paper_parameters(hep=0.001))
        nines = nines_by_configuration(comparisons)
        assert set(nines) == {"RAID1(1+1)", "RAID5(3+1)", "RAID5(7+1)"}

    def test_empty_geometries_rejected(self):
        with pytest.raises(ConfigurationError):
            compare_equal_capacity(paper_parameters(), geometries=[])


class TestSweeps:
    def test_failure_rate_sweep_monotone(self):
        points = sweep_failure_rate(paper_parameters(hep=0.001), [1e-7, 1e-6, 1e-5])
        assert nines_series(points) == sorted(nines_series(points), reverse=True)
        assert x_series(points) == [1e-7, 1e-6, 1e-5]

    def test_hep_sweep_monotone(self):
        points = sweep_hep(paper_parameters(), [0.0, 0.001, 0.01])
        availability = availability_series(points)
        assert availability == sorted(availability, reverse=True)

    def test_hep_zero_point_uses_baseline(self):
        points = sweep_hep(paper_parameters(), [0.0])
        from repro.core.models import baseline_availability

        expected = baseline_availability(paper_parameters(hep=0.0)).availability
        assert points[0].availability == pytest.approx(expected)

    def test_sweep_per_failure_rate(self):
        grid = sweep_hep_for_failure_rates(
            paper_parameters(), [0.0, 0.01], [1e-6, 1e-5]
        )
        assert set(grid) == {1e-6, 1e-5}
        assert all(len(points) == 2 for points in grid.values())

    def test_policy_sweep_contains_both_policies(self):
        series = sweep_policies(paper_parameters(), [0.0, 0.001, 0.01])
        assert set(series) == {"conventional", "automatic_failover"}
        conventional = series["conventional"]
        failover = series["automatic_failover"]
        for c, f in zip(conventional[1:], failover[1:]):
            assert f.availability >= c.availability

    def test_sweep_point_as_dict(self):
        point = sweep_hep(paper_parameters(), [0.01])[0]
        assert set(point.as_dict()) == {"x", "availability", "unavailability", "nines"}

    def test_empty_inputs_rejected(self):
        with pytest.raises(ConfigurationError):
            sweep_failure_rate(paper_parameters(), [])
        with pytest.raises(ConfigurationError):
            sweep_hep(paper_parameters(), [])
        with pytest.raises(ConfigurationError):
            sweep_hep_for_failure_rates(paper_parameters(), [0.01], [])
        with pytest.raises(ConfigurationError):
            sweep_policies(paper_parameters(), [0.01], models=[])


class TestUnderestimation:
    def test_factor_greater_than_one(self):
        point = underestimation_factor(paper_parameters(hep=0.01))
        assert point.factor > 1.0
        assert point.unavailability_with_hep > point.unavailability_without_hep

    def test_factor_grows_as_failure_rate_shrinks(self):
        points = underestimation_sweep(
            paper_parameters(), [1e-5, 1e-6, 1e-7], hep=0.01
        )
        factors = [p.factor for p in points]
        assert factors[0] < factors[1] < factors[2]

    def test_headline_reaches_two_orders_of_magnitude(self):
        # The paper quotes "up to 263X"; with the paper's parameters the
        # factor exceeds 100X for small failure rates.
        best = maximum_underestimation(
            paper_parameters(), [5e-8, 1e-7, 1e-6, 5e-6], hep_values=(0.001, 0.01)
        )
        assert best.factor > 100.0
        assert orders_of_magnitude(best.factor) > 2.0

    def test_larger_hep_underestimated_more(self):
        small = underestimation_factor(paper_parameters(hep=0.001, disk_failure_rate=1e-6))
        large = underestimation_factor(paper_parameters(hep=0.01, disk_failure_rate=1e-6))
        assert large.factor > small.factor

    def test_hep_zero_rejected(self):
        with pytest.raises(ConfigurationError):
            underestimation_factor(paper_parameters(hep=0.0))

    def test_point_as_dict(self):
        payload = underestimation_factor(paper_parameters(hep=0.01)).as_dict()
        assert set(payload) == {
            "disk_failure_rate", "hep", "unavailability_with_hep",
            "unavailability_without_hep", "factor",
        }

    def test_maximum_requires_positive_hep(self):
        with pytest.raises(ConfigurationError):
            maximum_underestimation(paper_parameters(), [1e-6], hep_values=(0.0,))

    def test_orders_of_magnitude_validation(self):
        with pytest.raises(ConfigurationError):
            orders_of_magnitude(0.0)
