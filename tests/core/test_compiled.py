"""Tests for the compiled kernel backend and the thread/serial shard pools.

The oracle pattern under test: ``kernel=numpy`` and ``pool=serial`` are the
retained reference paths, and every fast path (compiled row searches, thread
or process pools at any worker count) must reproduce them *bit-identically*
— same availabilities, same intervals, same event totals, same replay.

Compiled-backend assertions are gated on numba being importable
(``pip install .[compiled]``, exercised by the CI ``compiled-smoke`` job);
the pool oracle, configuration surface and fallback behaviour run everywhere.
"""

from __future__ import annotations

import warnings

import numpy as np
import pytest

from repro.core.evaluation import evaluate
from repro.core.montecarlo import (
    KERNELS,
    POOLS,
    MonteCarloConfig,
    compiled_available,
    has_compiled_face,
    kernel_context,
    replay_stacked_point,
    resolve_kernel,
    run_batch,
    run_batch_lifetimes,
    run_sharded,
    run_stacked,
)
from repro.core.montecarlo.compiled import (
    compiled_ops,
    reset_compiled_state,
    warmup_compiled,
)
from repro.core.parameters import paper_parameters
from repro.core.policies import available_policies
from repro.core.policies.registry import resolve_policy
from repro.core.policies.vectorized import (
    _min_and_slot,
    _min_excluding,
    _second_smallest,
    active_kernel_ops,
    kernel_ops,
)
from repro.exceptions import ConfigurationError
from repro.storage.raid import RaidGeometry

needs_numba = pytest.mark.skipif(
    not compiled_available(), reason="numba not installed (pip install .[compiled])"
)
needs_no_numba = pytest.mark.skipif(
    compiled_available(), reason="numba is installed; fallback paths unreachable"
)

#: Stress point where downtime events are frequent enough that any backend
#: divergence would corrupt the comparison arrays within a few hundred runs.
STRESS = paper_parameters(disk_failure_rate=1e-4, hep=0.05)
HORIZON = 50_000.0


def _config(n=600, seed=7, **overrides):
    overrides.setdefault("params", STRESS)
    overrides.setdefault("policy", "conventional")
    return MonteCarloConfig(
        n_iterations=n, horizon_hours=HORIZON, seed=seed, **overrides
    )


def _grid_configs(heps=(0.02, 0.05, 0.1), n=400, seed=11, **overrides):
    return [
        _config(
            n=n,
            seed=seed,
            params=paper_parameters(disk_failure_rate=1e-4, hep=hep),
            **overrides,
        )
        for hep in heps
    ]


def _assert_results_identical(a, b):
    assert a.availability == b.availability
    assert a.interval.lower == b.interval.lower
    assert a.interval.upper == b.interval.upper
    assert a.n_iterations == b.n_iterations
    assert a.totals == b.totals


@pytest.fixture
def fresh_compiled_state():
    """Clear the probe/warn-once/ops caches around a test that pokes them."""
    reset_compiled_state()
    yield
    reset_compiled_state()


class TestKernelResolution:
    def test_invalid_kernel_rejected(self):
        with pytest.raises(ConfigurationError):
            resolve_kernel("fortran")

    def test_numpy_resolves_to_numpy(self):
        assert resolve_kernel("numpy") == "numpy"

    def test_auto_resolves_to_a_concrete_backend(self):
        assert resolve_kernel("auto") in ("numpy", "compiled")

    @needs_no_numba
    def test_compiled_without_numba_is_a_configuration_error(self):
        with pytest.raises(ConfigurationError, match=r"\[compiled\]"):
            resolve_kernel("compiled")

    @needs_no_numba
    def test_auto_fallback_warns_exactly_once(self, fresh_compiled_state):
        with pytest.warns(RuntimeWarning, match="numba is not"):
            assert resolve_kernel("auto") == "numpy"
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert resolve_kernel("auto") == "numpy"

    @needs_numba
    def test_auto_prefers_compiled_when_numba_present(self):
        assert resolve_kernel("auto") == "compiled"
        assert resolve_kernel("compiled") == "compiled"

    def test_kernel_context_yields_concrete_name(self):
        with kernel_context("numpy") as active:
            assert active == "numpy"
            assert active_kernel_ops() is None


class TestConfigSurface:
    def test_kernel_membership_validated(self):
        with pytest.raises(ConfigurationError, match="kernel"):
            _config(kernel="fortran")

    def test_pool_membership_validated(self):
        with pytest.raises(ConfigurationError, match="pool"):
            _config(pool="greenlet")

    def test_compiled_kernel_rejects_scalar_executor(self):
        with pytest.raises(ConfigurationError, match="scalar"):
            _config(kernel="compiled", executor="scalar")

    def test_compiled_kernel_rejects_trace_collection(self):
        with pytest.raises(ConfigurationError, match="trace"):
            _config(kernel="compiled", collect_trace=True)

    @pytest.mark.parametrize("pool", ["thread", "serial"])
    def test_in_process_pools_reject_shm_transport(self, pool):
        with pytest.raises(ConfigurationError, match="shm"):
            _config(pool=pool, transport="shm", shard_size=200, workers=2)

    def test_with_kernel_and_with_pool_helpers(self):
        config = _config()
        assert config.kernel == "auto" and config.pool == "process"
        assert config.with_kernel("numpy").kernel == "numpy"
        assert config.with_pool("thread").pool == "thread"
        # helpers still validate
        with pytest.raises(ConfigurationError):
            _config().with_kernel("fortran")

    def test_constants_exported(self):
        assert KERNELS == ("auto", "numpy", "compiled", "fused")
        assert POOLS == ("process", "thread", "serial")


class TestCompiledFaces:
    # erasure has no row searches for kernel="compiled" to accelerate, but
    # it earns its compiled face through the fused event loop (PR 9).
    EXPECTED = {
        "automatic_failover": True,
        "baseline": True,
        "conventional": True,
        "erasure": True,
        "hot_spare_pool": True,
    }

    def test_every_registered_policy_is_classified(self):
        assert set(available_policies()) == set(self.EXPECTED)

    @pytest.mark.parametrize("name", sorted(EXPECTED))
    def test_face_verdict(self, name):
        assert has_compiled_face(resolve_policy(name)) is self.EXPECTED[name]

    def test_no_batch_kernel_means_no_compiled_face(self):
        class Scalar:
            batch = None

        assert has_compiled_face(Scalar()) is False


class TestPoolOracle:
    """workers=N on any pool must be bit-identical to the workers=1 reference."""

    def test_single_point_pools_match_reference(self):
        reference = run_sharded(_config(shard_size=200, workers=1))
        for pool, workers in [
            ("process", 2),
            ("thread", 2),
            ("thread", 4),
            ("serial", 4),
        ]:
            result = run_sharded(
                _config(shard_size=200, workers=workers, pool=pool)
            )
            _assert_results_identical(reference, result)

    def test_stacked_pools_match_reference(self):
        reference = run_stacked(_grid_configs(workers=1))
        for pool, workers in [("thread", 2), ("thread", 4), ("serial", 3)]:
            results = run_stacked(_grid_configs(workers=workers, pool=pool))
            for ref, res in zip(reference, results):
                _assert_results_identical(ref, res)

    def test_thread_pool_pickle_transport_matches_view(self):
        reference = run_stacked(_grid_configs(workers=2, pool="thread"))
        pickled = run_stacked(
            _grid_configs(workers=2, pool="thread", transport="pickle")
        )
        for ref, res in zip(reference, pickled):
            _assert_results_identical(ref, res)

    def test_replay_matches_thread_pool_grid_entry(self):
        configs = _grid_configs(workers=2, pool="thread")
        grid = run_stacked(configs)
        for index in (0, 2):
            _assert_results_identical(grid[index], replay_stacked_point(configs, index))

    def test_adaptive_allocation_is_pool_independent(self):
        def run(pool):
            return run_stacked(
                _grid_configs(
                    heps=(0.05, 0.1),
                    n=300,
                    workers=2,
                    pool=pool,
                    target_half_width=5e-4,
                    max_iterations=1500,
                )
            )

        for ref, res in zip(run("process"), run("thread")):
            _assert_results_identical(ref, res)

    def test_crn_is_pool_independent(self):
        reference = run_stacked(_grid_configs(workers=1), crn=True)
        threaded = run_stacked(_grid_configs(workers=2, pool="thread"), crn=True)
        for ref, res in zip(reference, threaded):
            _assert_results_identical(ref, res)

    def test_auto_kernel_equals_numpy_kernel(self):
        # With numba absent "auto" trivially falls back; with numba present
        # this is the end-to-end compiled-vs-numpy bit-identity check.
        auto = run_batch(_config(kernel="auto"))
        ref = run_batch(_config(kernel="numpy"))
        _assert_results_identical(ref, auto)


class TestProvenance:
    def test_sharded_provenance_names_pool_and_kernel(self):
        estimate = evaluate(
            STRESS, "conventional", backend="monte_carlo",
            n_iterations=400, seed=3, shard_size=200, workers=2,
            pool_kind="thread",
        )
        assert "thread pool" in estimate.provenance
        assert f"kernel={resolve_kernel('auto')}" in estimate.provenance

    def test_batch_provenance_names_resolved_kernel(self):
        estimate = evaluate(
            STRESS, "conventional", backend="monte_carlo",
            n_iterations=400, seed=3, kernel="numpy",
        )
        assert estimate.provenance == "executor=batch kernel=numpy"


# ----------------------------------------------------------------------
# Compiled-backend suites (skipped without numba)
# ----------------------------------------------------------------------

def _tricky_matrices():
    inf = np.inf
    yield np.array([[3.0, 1.0, 2.0], [5.0, 5.0, 5.0]])            # ties
    yield np.array([[1.0, 1.0], [2.0, 1.0]])                      # tie at column 0
    yield np.array([[inf, inf, inf], [1.0, inf, 0.5]])            # all-inf row
    yield np.array([[0.0, -0.0, 1.0]])                            # signed zeros
    rng = np.random.default_rng(42)
    dense = rng.exponential(100.0, size=(64, 7))
    dense[rng.random(dense.shape) < 0.2] = inf
    yield dense


@needs_numba
class TestCompiledOpsUnit:
    """The njit scans against the numpy helpers, element for element."""

    def test_warmup_compiles_all_primitives(self):
        warmup_compiled()  # must not raise; benches rely on it

    @pytest.mark.parametrize("clocks", list(_tricky_matrices()), ids=repr)
    def test_min_and_slot_matches_numpy(self, clocks):
        ref_slot, ref_best = _min_and_slot(clocks)
        slot, best = compiled_ops().min_and_slot(clocks)
        np.testing.assert_array_equal(slot, ref_slot)
        np.testing.assert_array_equal(best, ref_best)

    @pytest.mark.parametrize("clocks", list(_tricky_matrices()), ids=repr)
    def test_min_excluding_matches_numpy(self, clocks):
        rng = np.random.default_rng(clocks.shape[0])
        exclude = rng.integers(0, clocks.shape[1], size=clocks.shape[0])
        ref_slot, ref_best = _min_excluding(clocks, exclude)
        slot, best = compiled_ops().min_excluding(clocks, exclude)
        np.testing.assert_array_equal(slot, ref_slot)
        np.testing.assert_array_equal(best, ref_best)

    def test_min_excluding_all_inf_row_matches_mask_argmin(self):
        clocks = np.array([[1.0, np.inf, np.inf]])
        ref = _min_excluding(clocks, np.array([0]))
        got = compiled_ops().min_excluding(clocks, np.array([0]))
        np.testing.assert_array_equal(got[0], ref[0])
        np.testing.assert_array_equal(got[1], ref[1])

    @pytest.mark.parametrize("clocks", list(_tricky_matrices()), ids=repr)
    def test_second_smallest_matches_partition(self, clocks):
        if clocks.shape[1] < 2:
            pytest.skip("second order statistic needs two columns")
        out = np.empty_like(clocks)
        ref = _second_smallest(clocks, out).copy()
        got = compiled_ops().second_smallest(clocks)
        np.testing.assert_array_equal(got, ref)

    def test_kernel_ops_routing_is_scoped(self):
        assert active_kernel_ops() is None
        with kernel_ops(compiled_ops()):
            assert active_kernel_ops() is compiled_ops()
        assert active_kernel_ops() is None


def _batch_pair(policy, params, biasing=None, n=400, seed=19):
    config = MonteCarloConfig(
        params=params, policy=policy, n_iterations=n,
        horizon_hours=HORIZON, seed=seed, biasing=biasing,
    )
    numpy_batch = run_batch_lifetimes(config.with_kernel("numpy"))
    compiled_batch = run_batch_lifetimes(config.with_kernel("compiled"))
    return numpy_batch, compiled_batch


@needs_numba
class TestCompiledBitIdentity:
    """Per policy x geometry x biasing: compiled batch == numpy batch."""

    GEOMETRIES = [RaidGeometry.raid5(3), RaidGeometry.raid1(), RaidGeometry.raid6(4)]

    @pytest.mark.parametrize("policy", sorted(TestCompiledFaces.EXPECTED))
    @pytest.mark.parametrize("geometry", GEOMETRIES, ids=str)
    def test_batch_bit_identity(self, policy, geometry):
        params = paper_parameters(
            geometry=geometry, disk_failure_rate=1e-4, hep=0.05
        )
        ref, got = _batch_pair(policy, params)
        np.testing.assert_array_equal(got.downtime_hours, ref.downtime_hours)
        np.testing.assert_array_equal(got.du_events, ref.du_events)
        np.testing.assert_array_equal(got.dl_events, ref.dl_events)
        np.testing.assert_array_equal(got.disk_failures, ref.disk_failures)
        np.testing.assert_array_equal(got.human_errors, ref.human_errors)
        assert got.log_weights is None and ref.log_weights is None

    @pytest.mark.parametrize("biasing", [2.0, 8.0])
    def test_biased_batch_bit_identity(self, biasing):
        ref, got = _batch_pair("conventional", STRESS, biasing=biasing)
        np.testing.assert_array_equal(got.downtime_hours, ref.downtime_hours)
        np.testing.assert_allclose(
            got.log_weights, ref.log_weights, rtol=0.0, atol=1e-12
        )

    def test_stacked_mixed_geometry_bit_identity(self):
        def run(kernel):
            return run_stacked(
                [
                    _config(
                        n=300,
                        params=paper_parameters(
                            geometry=geometry, disk_failure_rate=1e-4, hep=0.05
                        ),
                        kernel=kernel,
                    )
                    for geometry in self.GEOMETRIES
                ]
            )

        for ref, res in zip(run("numpy"), run("compiled")):
            _assert_results_identical(ref, res)

    def test_thread_pool_compiled_matches_serial_numpy(self):
        reference = run_sharded(_config(shard_size=200, workers=1, kernel="numpy"))
        compiled = run_sharded(
            _config(shard_size=200, workers=4, pool="thread", kernel="compiled")
        )
        _assert_results_identical(reference, compiled)


@needs_numba
class TestCompiledStatisticalPin:
    """The statistically-pinned check: the compiled CI covers the truth.

    Redundant with bit-identity today (same draws, same selections), but
    it is the contract a future fused nopython event loop — which would
    own its draw discipline — must still satisfy.
    """

    def test_compiled_interval_covers_numpy_estimate(self):
        ref = run_batch(_config(n=4000, kernel="numpy", confidence=0.99))
        got = run_batch(_config(n=4000, seed=23, kernel="compiled", confidence=0.99))
        assert abs(got.availability - ref.availability) <= (
            ref.interval.half_width + got.interval.half_width
        )
