"""Tests for the policy registry and the vectorised batch executor."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.montecarlo import (
    MonteCarloConfig,
    replay_trace_on_engine,
    run_batch,
    run_monte_carlo,
    run_monte_carlo_with_trace,
)
from repro.core.parameters import paper_parameters
from repro.core.policies import (
    BatchLifetimes,
    SimulationPolicy,
    available_policies,
    get_policy,
    hot_spare_policy,
    register_policy,
    resolve_policy,
    simulate_hot_spare,
    unregister_policy,
)
from repro.exceptions import ConfigurationError
from repro.human.policy import PolicyKind


def _intervals_overlap(a, b) -> bool:
    return max(a.interval.lower, b.interval.lower) <= min(a.interval.upper, b.interval.upper)


FAST_PARAMS = paper_parameters(disk_failure_rate=1e-4, hep=0.05)


class TestRegistry:
    def test_builtin_policies_registered(self):
        names = available_policies()
        assert {"conventional", "automatic_failover", "hot_spare_pool"} <= set(names)

    def test_resolve_accepts_enum_string_and_instance(self):
        by_enum = resolve_policy(PolicyKind.CONVENTIONAL)
        by_name = resolve_policy("conventional")
        assert by_enum is by_name
        assert resolve_policy(by_name) is by_name

    def test_register_and_unregister_custom_policy(self):
        custom = SimulationPolicy(
            name="custom_test_policy",
            description="registered by the test suite",
            scalar=get_policy("conventional").scalar,
        )
        try:
            register_policy(custom)
            assert get_policy("custom_test_policy") is custom
            assert not get_policy("custom_test_policy").has_batch_kernel
            with pytest.raises(ConfigurationError):
                register_policy(custom)  # duplicate name
            register_policy(custom, replace=True)  # explicit override is fine
        finally:
            unregister_policy("custom_test_policy")
        with pytest.raises(ConfigurationError):
            get_policy("custom_test_policy")

    def test_unknown_policy_from_runner(self):
        config = MonteCarloConfig(params=paper_parameters(), n_iterations=2)
        object.__setattr__(config, "policy", "bogus")
        with pytest.raises(ConfigurationError):
            run_monte_carlo(config)

    def test_unknown_policy_error_lists_alternatives(self):
        with pytest.raises(ConfigurationError, match="conventional"):
            get_policy("not_a_policy")

    def test_resolve_rejects_other_types(self):
        with pytest.raises(ConfigurationError):
            resolve_policy(object())


class TestConfigExecutor:
    def test_invalid_executor_rejected(self):
        with pytest.raises(ConfigurationError):
            MonteCarloConfig(executor="warp")

    def test_policy_name_property(self):
        assert MonteCarloConfig(policy=PolicyKind.CONVENTIONAL).policy_name == "conventional"
        assert MonteCarloConfig(policy="hot_spare_pool").policy_name == "hot_spare_pool"
        assert MonteCarloConfig(policy=hot_spare_policy(3)).policy_name == "hot_spare_pool_k3"

    def test_with_executor(self):
        config = MonteCarloConfig().with_executor("scalar")
        assert config.executor == "scalar"


class TestScalarBatchAgreement:
    """The two executors are different samplers of the same model: at a
    fixed parameter set their 99% confidence intervals must overlap."""

    @pytest.mark.parametrize(
        "policy", [PolicyKind.CONVENTIONAL, PolicyKind.AUTOMATIC_FAILOVER, "hot_spare_pool"]
    )
    def test_availability_intervals_overlap(self, policy):
        config = MonteCarloConfig(
            params=FAST_PARAMS,
            policy=policy,
            n_iterations=2500,
            horizon_hours=87_600.0,
            seed=42,
        )
        scalar = run_monte_carlo(config.with_executor("scalar"))
        batch = run_monte_carlo(config.with_executor("batch"))
        assert scalar.unavailability > 0.0
        assert batch.unavailability > 0.0
        assert _intervals_overlap(scalar, batch)
        # Event rates agree to a loose tolerance as well.
        assert batch.totals["disk_failures"] == pytest.approx(
            scalar.totals["disk_failures"], rel=0.1
        )

    def test_batch_reproducible_with_seed(self):
        config = MonteCarloConfig(
            params=FAST_PARAMS, n_iterations=500, horizon_hours=50_000.0, seed=7,
            executor="batch",
        )
        first = run_monte_carlo(config)
        second = run_monte_carlo(config)
        assert first.availability == second.availability
        assert first.totals == second.totals

    def test_auto_executor_matches_batch(self):
        config = MonteCarloConfig(
            params=FAST_PARAMS, n_iterations=500, horizon_hours=50_000.0, seed=7,
        )
        assert run_monte_carlo(config).availability == pytest.approx(
            run_monte_carlo(config.with_executor("batch")).availability, rel=0.0
        )


class TestBatchLifetimes:
    def test_zeros_and_conversion(self):
        batch = BatchLifetimes.zeros(3, 100.0)
        batch.downtime_hours[1] = 5.0
        batch.dl_events[1] = 1
        results = batch.to_iteration_results()
        assert len(results) == 3
        assert results[1].availability == pytest.approx(0.95)
        assert batch.totals()["dl_events"] == 1.0
        assert np.allclose(batch.availabilities(), [1.0, 0.95, 1.0])

    def test_scalar_fallback_for_policies_without_kernel(self):
        no_kernel = SimulationPolicy(
            name="scalar_only",
            description="no batch kernel",
            scalar=get_policy("conventional").scalar,
        )
        config = MonteCarloConfig(
            params=FAST_PARAMS, policy=no_kernel, n_iterations=50,
            horizon_hours=20_000.0, seed=3, executor="batch",
        )
        result = run_batch(config)
        assert result.n_iterations == 50
        assert 0.0 <= result.availability <= 1.0


class TestHotSparePolicy:
    def test_runs_end_to_end_via_registry(self):
        config = MonteCarloConfig(
            params=FAST_PARAMS, policy="hot_spare_pool", n_iterations=300,
            horizon_hours=50_000.0, seed=5,
        )
        result = run_monte_carlo(config)
        assert 0.0 < result.availability <= 1.0
        assert result.totals["disk_failures"] > 0

    def test_custom_pool_size_factory(self):
        policy = hot_spare_policy(4)
        assert policy.n_spares == 4
        assert policy.has_batch_kernel
        config = MonteCarloConfig(
            params=FAST_PARAMS, policy=policy, n_iterations=200,
            horizon_hours=20_000.0, seed=5,
        )
        assert 0.0 < run_monte_carlo(config).availability <= 1.0

    def test_invalid_pool_size_rejected(self):
        with pytest.raises(ConfigurationError):
            hot_spare_policy(0)

    def test_scalar_simulator_traces(self, rng):
        from repro.core.montecarlo import EpisodeTrace

        trace = EpisodeTrace()
        params = paper_parameters(disk_failure_rate=1e-3, hep=0.1)
        result = simulate_hot_spare(params, 100_000.0, rng, trace=trace, n_spares=2)
        assert result.disk_failures > 0
        assert "disk_failure" in set(trace.kinds())

    def test_more_spares_do_not_hurt_under_slow_restock(self):
        # With slow restocking visits, a deeper pool must not lose
        # availability relative to single-spare fail-over (statistically).
        from dataclasses import replace

        params = replace(
            paper_parameters(disk_failure_rate=2e-4, hep=0.02),
            spare_replacement_rate=0.005,
        )
        base = MonteCarloConfig(
            params=params, n_iterations=4000, horizon_hours=87_600.0, seed=13,
        )
        failover = run_monte_carlo(base.with_policy(PolicyKind.AUTOMATIC_FAILOVER))
        pooled = run_monte_carlo(base.with_policy(hot_spare_policy(3)))
        assert pooled.unavailability <= failover.unavailability * 1.25


class TestEngineBridge:
    def test_trace_replays_on_engine(self):
        config = MonteCarloConfig(
            params=paper_parameters(disk_failure_rate=1e-3, hep=0.1),
            n_iterations=10, horizon_hours=20_000.0, seed=2,
        )
        result, trace = run_monte_carlo_with_trace(config)
        assert len(trace) > 0
        engine = replay_trace_on_engine(trace, horizon_hours=config.horizon_hours)
        assert engine.events_processed == len(trace)
        kinds = [record.kind for record in engine.trace]
        assert kinds == trace.kinds()
        times = [record.time for record in engine.trace]
        assert times == sorted(times)
        assert result.n_iterations == 10
