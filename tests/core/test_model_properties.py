"""Property-based tests over the paper's availability models (hypothesis).

These encode the invariants that must hold for *any* admissible parameter
set, not just the paper's operating points: probabilities stay in range,
availability responds monotonically to hep and the failure rate, the
fail-over policy never loses to the conventional one, and ignoring human
error never predicts more downtime than modelling it.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.evaluation import analytical_result
from repro.core.models import build_conventional_chain, build_failover_chain
from repro.core.parameters import paper_parameters
from repro.markov.validation import validate_chain
from repro.storage.raid import RaidGeometry

FAILURE_RATES = st.floats(min_value=1e-8, max_value=1e-4)
HEPS = st.floats(min_value=0.0, max_value=0.2)
POSITIVE_HEPS = st.floats(min_value=1e-4, max_value=0.2)
DATA_DISKS = st.integers(min_value=2, max_value=15)

_SETTINGS = settings(max_examples=40, deadline=None)


@given(rate=FAILURE_RATES, hep=HEPS, data_disks=DATA_DISKS)
@_SETTINGS
def test_conventional_availability_is_probability(rate, hep, data_disks):
    params = paper_parameters(
        geometry=RaidGeometry.raid5(data_disks), disk_failure_rate=rate, hep=hep
    )
    result = analytical_result(params, "conventional")
    assert 0.0 <= result.availability <= 1.0
    assert sum(result.state_probabilities.values()) == pytest.approx(1.0, abs=1e-9)


@given(rate=FAILURE_RATES, hep=POSITIVE_HEPS)
@_SETTINGS
def test_modelling_human_error_never_increases_availability(rate, hep):
    params = paper_parameters(disk_failure_rate=rate, hep=hep)
    baseline = analytical_result(params, "baseline")
    with_error = analytical_result(params, "conventional")
    assert with_error.availability <= baseline.availability + 1e-15


@given(rate=FAILURE_RATES, hep=POSITIVE_HEPS)
@_SETTINGS
def test_failover_never_worse_than_conventional(rate, hep):
    params = paper_parameters(disk_failure_rate=rate, hep=hep)
    conventional = analytical_result(params, "conventional")
    failover = analytical_result(params, "automatic_failover")
    assert failover.availability >= conventional.availability - 1e-12


@given(rate=FAILURE_RATES, hep=HEPS)
@_SETTINGS
def test_availability_monotone_in_hep(rate, hep):
    params = paper_parameters(disk_failure_rate=rate, hep=hep)
    larger = params.with_hep(min(hep + 0.05, 1.0))
    policy_small = "baseline" if hep == 0.0 else "conventional"
    small_result = analytical_result(params, policy_small)
    large_result = analytical_result(larger, "conventional")
    assert large_result.availability <= small_result.availability + 1e-15


@given(rate=FAILURE_RATES, hep=POSITIVE_HEPS)
@_SETTINGS
def test_availability_monotone_in_failure_rate(rate, hep):
    params = paper_parameters(disk_failure_rate=rate, hep=hep)
    worse = params.with_failure_rate(rate * 3.0)
    assert (
        analytical_result(worse, "conventional").availability
        <= analytical_result(params, "conventional").availability + 1e-15
    )


@given(rate=FAILURE_RATES, hep=POSITIVE_HEPS, data_disks=DATA_DISKS)
@_SETTINGS
def test_chains_always_structurally_valid(rate, hep, data_disks):
    params = paper_parameters(
        geometry=RaidGeometry.raid5(data_disks), disk_failure_rate=rate, hep=hep
    )
    assert validate_chain(build_conventional_chain(params)).ok
    assert validate_chain(build_failover_chain(params)).ok


@given(rate=FAILURE_RATES, hep=POSITIVE_HEPS)
@_SETTINGS
def test_more_disks_reduce_array_availability(rate, hep):
    small = paper_parameters(geometry=RaidGeometry.raid5(3), disk_failure_rate=rate, hep=hep)
    large = paper_parameters(geometry=RaidGeometry.raid5(7), disk_failure_rate=rate, hep=hep)
    assert (
        analytical_result(large, "conventional").availability
        <= analytical_result(small, "conventional").availability + 1e-15
    )
