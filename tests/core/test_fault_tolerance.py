"""Tests for the sharded executor's fault tolerance.

Covers the retry/timeout/backoff layer (crashed, hung and killed shards
recompute bit-identical summaries), worker-loss recovery on process pools,
graceful interruption into flagged partial results, the durable
checkpoint/resume journal (resumed runs bit-identical to uninterrupted
ones, across worker counts), the deterministic fault-injection harness
itself, and the shared-memory orphan reaper.
"""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

from repro.core.montecarlo import (
    FaultInjected,
    FaultPlan,
    MonteCarloConfig,
    ShardJournal,
    fault_plan,
    journal_entropy,
    run_digest,
    run_monte_carlo,
    run_stacked,
)
from repro.core.montecarlo.transport import active_segments, reap_stale_segments
from repro.core.parameters import paper_parameters
from repro.core.policies import get_policy
from repro.exceptions import ConfigurationError
from repro.simulation.rng import RandomStreams

#: Exaggerated operating point: events are frequent enough that a few
#: thousand lifetimes resolve an interval (same point the executor tests use).
STRESS = dict(disk_failure_rate=1e-4, hep=0.05)
HORIZON = 50_000.0


def _config(**overrides) -> MonteCarloConfig:
    defaults = dict(
        params=paper_parameters(**STRESS),
        n_iterations=2000,
        horizon_hours=HORIZON,
        seed=13,
        shard_size=500,
        max_shard_retries=2,
        retry_backoff=0.0,
    )
    defaults.update(overrides)
    return MonteCarloConfig(**defaults)


def _stacked_configs(n_points: int = 3, **overrides):
    heps = np.linspace(0.01, 0.05, n_points)
    defaults = dict(
        n_iterations=1500,
        horizon_hours=HORIZON,
        seed=13,
        shard_size=500,
        max_shard_retries=2,
        retry_backoff=0.0,
    )
    defaults.update(overrides)
    return [
        MonteCarloConfig(
            params=paper_parameters(disk_failure_rate=1e-4, hep=float(hep)),
            policy="conventional",
            **defaults,
        )
        for hep in heps
    ]


def _assert_bit_identical(results, reference):
    for got, want in zip(results, reference):
        assert got.availability == want.availability
        assert got.interval.half_width == want.interval.half_width
        assert got.n_iterations == want.n_iterations
        assert got.totals == want.totals


class TestConfigValidation:
    def test_shard_timeout_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            _config(shard_timeout=0.0)
        with pytest.raises(ConfigurationError):
            _config(shard_timeout=-1.0)

    def test_max_shard_retries_non_negative(self):
        with pytest.raises(ConfigurationError):
            _config(max_shard_retries=-1)

    def test_retry_backoff_non_negative(self):
        with pytest.raises(ConfigurationError):
            _config(retry_backoff=-0.5)

    def test_checkpoint_and_resume_mutually_exclusive(self):
        with pytest.raises(ConfigurationError):
            _config(checkpoint="a.journal", resume="b.journal")

    def test_journal_requires_sharded_executor(self):
        config = MonteCarloConfig(
            params=paper_parameters(**STRESS),
            n_iterations=2000,
            horizon_hours=HORIZON,
            seed=13,
            checkpoint="never-written.journal",
        )
        with pytest.raises(ConfigurationError, match="sharded"):
            run_monte_carlo(config)
        assert not Path("never-written.journal").exists()

    def test_with_retries_helper(self):
        config = _config().with_retries(3, shard_timeout=1.5)
        assert config.max_shard_retries == 3
        assert config.shard_timeout == 1.5

    def test_with_journal_helper(self):
        config = _config().with_journal(checkpoint="x.journal")
        assert config.checkpoint == "x.journal"
        assert config.journal_path == "x.journal"
        resumed = _config().with_journal(resume="x.journal")
        assert resumed.journal_path == "x.journal"


class TestFaultHarness:
    def test_plan_round_trips_through_file(self, tmp_path):
        from repro.core.montecarlo.faults import ShardFault, active_plan

        plan = FaultPlan(
            faults={2: ShardFault("hang", 0.25)},
            abort_after=3,
        )
        with fault_plan(plan, tmp_path) as path:
            installed = active_plan()
            assert installed is not None
            assert installed.plan.abort_after == 3
            assert installed.plan.faults[2].kind == "hang"
            assert installed.plan.faults[2].hang_seconds == 0.25
            assert Path(path).exists()
        assert os.environ.get("REPRO_FAULT_PLAN") is None

    def test_faults_fire_exactly_once(self, tmp_path):
        from repro.core.montecarlo.faults import check_fault

        with fault_plan(FaultPlan.single(0, "raise"), tmp_path):
            with pytest.raises(FaultInjected):
                check_fault(0)
            check_fault(0)  # armed: second attempt runs clean

    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigurationError):
            FaultPlan.single(0, "explode")


class TestScalarShardRetry:
    @pytest.mark.parametrize("pool", ["serial", "thread", "process"])
    @pytest.mark.parametrize("kind", ["raise", "kill"])
    def test_faulted_shard_retries_bit_identical(self, tmp_path, pool, kind):
        # "kill" degrades to "raise" on thread/serial pools (documented);
        # on the process pool it exercises the BrokenProcessPool rebuild.
        workers = 1 if pool == "serial" else 2
        clean = run_monte_carlo(_config(workers=workers, pool=pool))
        with fault_plan(FaultPlan.single(0, kind), tmp_path):
            faulted = run_monte_carlo(_config(workers=workers, pool=pool))
        assert faulted.retried_shards >= 1
        assert not faulted.interrupted
        _assert_bit_identical([faulted], [clean])

    def test_hang_trips_timeout_and_retries(self, tmp_path):
        clean = run_monte_carlo(_config(workers=2, pool="process"))
        with fault_plan(FaultPlan.single(0, "hang", hang_seconds=30.0), tmp_path):
            faulted = run_monte_carlo(
                _config(workers=2, pool="process", shard_timeout=1.0)
            )
        assert faulted.retried_shards >= 1
        _assert_bit_identical([faulted], [clean])

    def test_retries_exhausted_raises(self, tmp_path):
        # Two distinct shard faults against a single-retry budget: the
        # second failure exceeds max_shard_retries for its shard only if it
        # keeps faulting, so plan a fresh fault per attempt via retries=0.
        with fault_plan(FaultPlan.single(1, "raise"), tmp_path):
            with pytest.raises(FaultInjected):
                run_monte_carlo(_config(workers=2, pool="thread", max_shard_retries=0))

    def test_inline_path_retries_exceptions(self, tmp_path):
        # workers=1 without a pool runs shards inline; the retry budget
        # still applies to in-shard exceptions (timeouts are documented as
        # unenforced there).
        clean = run_monte_carlo(_config(workers=1))
        with fault_plan(FaultPlan.single(2, "raise"), tmp_path):
            faulted = run_monte_carlo(_config(workers=1))
        assert faulted.retried_shards == 1
        _assert_bit_identical([faulted], [clean])


class TestStackedFaultMatrix:
    @pytest.mark.parametrize(
        ("kind", "pool", "workers"),
        [
            ("raise", "serial", 1),
            ("raise", "thread", 2),
            ("raise", "process", 2),
            ("kill", "serial", 1),
            ("kill", "thread", 4),
            ("kill", "process", 2),
        ],
    )
    def test_faulted_stacked_shard_retries_bit_identical(
        self, tmp_path, kind, pool, workers
    ):
        clean = run_stacked(_stacked_configs(workers=workers, pool=pool))
        with fault_plan(FaultPlan.single(1, kind), tmp_path):
            faulted = run_stacked(_stacked_configs(workers=workers, pool=pool))
        assert sum(point.retried_shards for point in faulted) >= 1
        _assert_bit_identical(faulted, clean)

    @pytest.mark.parametrize("pool", ["thread", "process"])
    def test_stacked_hang_trips_timeout(self, tmp_path, pool):
        clean = run_stacked(_stacked_configs(workers=2, pool=pool))
        with fault_plan(FaultPlan.single(0, "hang", hang_seconds=3.0), tmp_path):
            faulted = run_stacked(
                _stacked_configs(workers=2, pool=pool, shard_timeout=0.75)
            )
        assert sum(point.retried_shards for point in faulted) >= 1
        _assert_bit_identical(faulted, clean)

    def test_adaptive_run_survives_fault(self, tmp_path):
        kwargs = dict(
            n_iterations=1000,
            target_half_width=5e-3,
            max_iterations=8000,
            workers=2,
            pool="thread",
        )
        clean = run_stacked(_stacked_configs(**kwargs))
        with fault_plan(FaultPlan.single(0, "raise"), tmp_path):
            faulted = run_stacked(_stacked_configs(**kwargs))
        assert sum(point.retried_shards for point in faulted) >= 1
        _assert_bit_identical(faulted, clean)


class TestInterruptAndResume:
    def test_scalar_interrupt_flags_partial_and_resumes(self, tmp_path):
        journal = str(tmp_path / "scalar.journal")
        clean = run_monte_carlo(_config(workers=1))
        with fault_plan(FaultPlan(abort_after=2), tmp_path / "plan"):
            partial = run_monte_carlo(_config(workers=1, checkpoint=journal))
        assert partial.interrupted
        assert partial.n_iterations == 1000  # 2 of 4 journaled shards
        resumed = run_monte_carlo(_config(workers=1, resume=journal))
        assert not resumed.interrupted
        assert resumed.resumed_shards == 2
        _assert_bit_identical([resumed], [clean])

    @pytest.mark.parametrize("resume_workers", [1, 4])
    def test_stacked_resume_bit_identical_across_workers(
        self, tmp_path, resume_workers
    ):
        journal = str(tmp_path / "stacked.journal")
        clean = run_stacked(_stacked_configs(workers=1))
        with fault_plan(FaultPlan(abort_after=2), tmp_path / "plan"):
            partial = run_stacked(_stacked_configs(workers=1, checkpoint=journal))
        assert any(point.interrupted for point in partial)
        resumed = run_stacked(
            _stacked_configs(
                workers=resume_workers,
                pool="thread" if resume_workers > 1 else "process",
                resume=journal,
            )
        )
        assert all(not point.interrupted for point in resumed)
        assert sum(point.resumed_shards for point in resumed) >= 2
        _assert_bit_identical(resumed, clean)

    def test_adaptive_resume_bit_identical(self, tmp_path):
        journal = str(tmp_path / "adaptive.journal")
        kwargs = dict(
            n_iterations=1000,
            target_half_width=5e-3,
            max_iterations=8000,
        )
        clean = run_stacked(_stacked_configs(**kwargs))
        with fault_plan(FaultPlan(abort_after=1), tmp_path / "plan"):
            partial = run_stacked(_stacked_configs(checkpoint=journal, **kwargs))
        assert any(point.interrupted for point in partial)
        resumed = run_stacked(_stacked_configs(resume=journal, **kwargs))
        assert sum(point.resumed_shards for point in resumed) >= 1
        _assert_bit_identical(resumed, clean)

    def test_completed_journal_resumes_without_recompute(self, tmp_path):
        journal = str(tmp_path / "done.journal")
        clean = run_stacked(_stacked_configs(checkpoint=journal))
        again = run_stacked(_stacked_configs(resume=journal))
        # Every shard of the finished run is journaled: the resume replays
        # them all without computing anything new.
        assert sum(point.resumed_shards for point in again) == 9  # 4500 / 500
        assert all(point.retried_shards == 0 for point in again)
        _assert_bit_identical(again, clean)

    def test_resume_with_unseeded_run_adopts_journal_entropy(self, tmp_path):
        journal = str(tmp_path / "unseeded.journal")
        with fault_plan(FaultPlan(abort_after=1), tmp_path / "plan"):
            partial = run_stacked(
                _stacked_configs(seed=None, checkpoint=journal)
            )
        assert any(point.interrupted for point in partial)
        entropy = journal_entropy(journal)
        assert entropy is not None
        resumed = run_stacked(_stacked_configs(seed=None, resume=journal))
        assert all(point.seed_entropy == entropy for point in resumed)
        assert sum(point.resumed_shards for point in resumed) >= 1


class TestJournalIntegrity:
    def test_missing_resume_journal_rejected(self, tmp_path):
        with pytest.raises(ConfigurationError, match="does not exist"):
            run_stacked(
                _stacked_configs(resume=str(tmp_path / "missing.journal"))
            )

    def test_digest_mismatch_rejected(self, tmp_path):
        journal = str(tmp_path / "mismatch.journal")
        run_stacked(_stacked_configs(checkpoint=journal))
        with pytest.raises(ConfigurationError, match="different run"):
            run_stacked(_stacked_configs(seed=99, resume=journal))

    def test_torn_tail_tolerated(self, tmp_path):
        journal = tmp_path / "torn.journal"
        with fault_plan(FaultPlan(abort_after=1), tmp_path / "plan"):
            run_stacked(_stacked_configs(checkpoint=str(journal)))
        with journal.open("a", encoding="utf-8") as handle:
            handle.write('{"kind": "shard", "key": [9')  # torn mid-write
        clean = run_stacked(_stacked_configs())
        resumed = run_stacked(_stacked_configs(resume=str(journal)))
        _assert_bit_identical(resumed, clean)

    def test_digest_excludes_workers_and_transport(self):
        configs = _stacked_configs()
        policy = get_policy("conventional")
        entropy = RandomStreams(13).seed_entropy
        base, _ = run_digest(
            configs, policy, master_entropy=entropy, shard_size=500
        )
        varied = [
            MonteCarloConfig(
                params=config.params,
                policy=config.policy,
                n_iterations=config.n_iterations,
                horizon_hours=config.horizon_hours,
                seed=config.seed,
                shard_size=config.shard_size,
                workers=8,
                pool="thread",
                transport="pickle",
                max_shard_retries=config.max_shard_retries,
                retry_backoff=config.retry_backoff,
            )
            for config in configs
        ]
        same, _ = run_digest(
            varied, policy, master_entropy=entropy, shard_size=500
        )
        assert same == base
        other, _ = run_digest(
            configs, policy, master_entropy=entropy + 1, shard_size=500
        )
        assert other != base

    def test_journal_append_idempotent(self, tmp_path):
        from repro.core.montecarlo.journal import record_from_summary
        from repro.simulation.confidence import StreamingMoments

        path = tmp_path / "idem.journal"
        rec = record_from_summary(StreamingMoments(), {})
        with ShardJournal.open(path, "d" * 64, {"k": 1}, 1234) as journal:
            journal.append((0, -1, -1), rec)
            journal.append((0, -1, -1), rec)
            assert len(journal) == 1


class TestShmOrphanRecovery:
    def test_parent_death_leaves_then_reaps_segment(self, tmp_path):
        pytest.importorskip("multiprocessing.shared_memory")
        if not Path("/dev/shm").is_dir():
            pytest.skip("no /dev/shm mount")
        script = (
            "import os\n"
            "from multiprocessing import resource_tracker, shared_memory\n"
            "from repro.core.montecarlo.transport import SHM_SEGMENT_PREFIX\n"
            "import secrets\n"
            "name = f'{SHM_SEGMENT_PREFIX}{os.getpid():x}-{secrets.token_hex(4)}'\n"
            "shm = shared_memory.SharedMemory(create=True, size=64, name=name)\n"
            # A lone SIGKILL'd parent is cleaned up by its resource-tracker
            # sidecar; the leak this reaper exists for is the whole process
            # tree dying at once (OOM kill, container teardown).  Simulate
            # that by unregistering before dying without cleanup.
            "try:\n"
            "    resource_tracker.unregister(shm._name, 'shared_memory')\n"
            "except Exception:\n"
            "    pass\n"
            "print(name, flush=True)\n"
            "os._exit(1)\n"
        )
        env = dict(os.environ)
        src = str(Path(__file__).resolve().parents[2] / "src")
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        proc = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True,
            text=True,
            env=env,
            timeout=60,
        )
        name = proc.stdout.strip()
        assert name, proc.stderr
        assert name in active_segments()
        reaped = reap_stale_segments()
        assert name in reaped
        assert name not in active_segments()

    def test_reaper_spares_live_segments(self):
        pytest.importorskip("multiprocessing.shared_memory")
        if not Path("/dev/shm").is_dir():
            pytest.skip("no /dev/shm mount")
        from multiprocessing import shared_memory

        from repro.core.montecarlo.transport import _segment_name

        name = _segment_name()  # embeds this (live) process's pid
        shm = shared_memory.SharedMemory(create=True, size=64, name=name)
        try:
            assert name not in reap_stale_segments()
            assert name in active_segments()
        finally:
            shm.close()
            shm.unlink()

    def test_no_segments_leak_after_faulted_run(self, tmp_path):
        from repro.core.montecarlo.transport import shared_memory_available

        if not shared_memory_available():
            pytest.skip("shared memory not usable on this host")
        before = set(active_segments())
        with fault_plan(FaultPlan.single(0, "kill"), tmp_path):
            run_stacked(
                _stacked_configs(workers=2, pool="process", transport="shm")
            )
        assert set(active_segments()) <= before


class TestCliFaultFlags:
    def test_reap_shm_command(self, capsys):
        from repro.cli import main

        assert main(["mc", "--reap-shm"]) == 0
        out = capsys.readouterr().out
        assert "stale shared-memory segment" in out

    def test_mc_interrupt_exits_nonzero_with_hint(self, tmp_path, capsys):
        from repro.cli import main

        journal = str(tmp_path / "cli.journal")
        args = [
            "mc",
            "--failure-rate", "1e-4",
            "--hep", "0.05",
            "--iterations", "2000",
            "--shard-size", "500",
            "--seed", "13",
        ]
        with fault_plan(FaultPlan(abort_after=2), tmp_path / "plan"):
            code = main(args + ["--checkpoint", journal])
        assert code == 3
        out = capsys.readouterr().out
        assert "interrupted" in out
        assert f"--resume {journal}" in out

        assert main(args + ["--resume", journal]) == 0
        out = capsys.readouterr().out
        assert "resumed shards:" in out

    def test_mc_retry_count_printed(self, tmp_path, capsys):
        from repro.cli import main

        with fault_plan(FaultPlan.single(0, "raise"), tmp_path):
            code = main(
                [
                    "mc",
                    "--failure-rate", "1e-4",
                    "--hep", "0.05",
                    "--iterations", "2000",
                    "--shard-size", "500",
                    "--seed", "13",
                    "--max-shard-retries", "2",
                ]
            )
        assert code == 0
        assert "retried shards:     1" in capsys.readouterr().out

    def test_sweep_interrupt_exits_nonzero_with_hint(self, tmp_path, capsys):
        from repro.cli import main

        journal = str(tmp_path / "sweep.journal")
        args = [
            "sweep",
            "--axis", "hep",
            "--values", "0.01,0.03,0.05",
            "--backend", "monte_carlo",
            "--failure-rate", "1e-4",
            "--iterations", "1500",
            "--seed", "13",
        ]
        with fault_plan(FaultPlan(abort_after=1), tmp_path / "plan"):
            code = main(args + ["--checkpoint", journal])
        assert code == 3
        out = capsys.readouterr().out
        assert "interrupted" in out
        assert f"--resume {journal}" in out

        assert main(args + ["--resume", journal]) == 0
        out = capsys.readouterr().out
        assert "resumed shards:" in out
