"""Tests for the generic sweep engine against the per-point rebuild path."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.evaluation import clear_template_cache
from repro.core.parameters import paper_parameters
from repro.core.sweep import (
    SWEEP_AXES,
    sweep,
    sweep_hep,
    sweep_per_point_rebuild,
    sweep_policies,
)
from repro.exceptions import ConfigurationError

#: Fig. 4's failure-rate grid (positive part) and Fig. 5's hep grid.
FIG4_RATES = [float(r) for r in np.linspace(5e-7, 5.5e-6, 11)]
FIG5_HEPS = [0.0, 0.001, 0.01]

FAST_PARAMS = paper_parameters(disk_failure_rate=1e-4, hep=0.05)


def assert_series_match(engine_points, rebuild_points, tol=1e-12):
    assert len(engine_points) == len(rebuild_points)
    for got, want in zip(engine_points, rebuild_points):
        assert got.x == want.x
        assert got.availability == pytest.approx(want.availability, abs=tol)
        assert got.unavailability == pytest.approx(want.unavailability, abs=tol)


class TestTemplateSweepMatchesRebuild:
    """Acceptance: template sweep == per-point rebuild to 1e-12 on Fig. 4/5 grids."""

    @pytest.mark.parametrize("policy", ["baseline", "conventional", "automatic_failover"])
    @pytest.mark.parametrize("hep", [0.001, 0.01])
    def test_fig4_failure_rate_series(self, policy, hep):
        base = paper_parameters(hep=hep)
        engine = sweep(base, "failure_rate", FIG4_RATES, policy, backend="auto")
        rebuild = sweep_per_point_rebuild(base, "failure_rate", FIG4_RATES, policy)
        assert_series_match(engine, rebuild)

    @pytest.mark.parametrize("policy", ["conventional", "automatic_failover"])
    @pytest.mark.parametrize("rate", [1.25e-6, 2.17e-6, 7.96e-6, 2e-5])
    def test_fig5_hep_series(self, policy, rate):
        base = paper_parameters(disk_failure_rate=rate, hep=0.0)
        engine = sweep(base, "hep", FIG5_HEPS, policy, backend="auto")
        rebuild = sweep_per_point_rebuild(base, "hep", FIG5_HEPS, policy)
        assert_series_match(engine, rebuild)

    def test_cold_cache_equivalence(self):
        clear_template_cache()
        base = paper_parameters(hep=0.01)
        engine = sweep(base, "failure_rate", FIG4_RATES, "conventional")
        rebuild = sweep_per_point_rebuild(base, "failure_rate", FIG4_RATES, "conventional")
        assert_series_match(engine, rebuild)

    @pytest.mark.parametrize(
        "axis", ["disk_repair_rate", "ddf_recovery_rate", "human_error_rate", "crash_rate"]
    )
    def test_generic_axes(self, axis):
        base = paper_parameters(hep=0.01)
        values = [0.01, 0.1, 1.0]
        engine = sweep(base, axis, values, "conventional")
        rebuild = sweep_per_point_rebuild(base, axis, values, "conventional")
        assert_series_match(engine, rebuild)

    def test_crash_rate_zero_switches_structure(self):
        # crash_rate = 0 drops the DU -> DL edge; the engine must evaluate it
        # on the reduced template, exactly like a fresh build does.
        base = paper_parameters(hep=0.01)
        values = [0.0, 0.005, 0.01]
        engine = sweep(base, "crash_rate", values, "conventional")
        rebuild = sweep_per_point_rebuild(base, "crash_rate", values, "conventional")
        assert_series_match(engine, rebuild)

    def test_interleaved_hep_zero_points(self):
        base = paper_parameters(hep=0.0)
        values = [0.01, 0.0, 0.001, 0.0, 0.01]
        engine = sweep(base, "hep", values, "conventional")
        rebuild = sweep_per_point_rebuild(base, "hep", values, "conventional")
        assert_series_match(engine, rebuild)


class TestSweepBehaviour:
    def test_unknown_axis_rejected(self):
        with pytest.raises(ConfigurationError):
            sweep(paper_parameters(), "warp_factor", [0.1], "conventional")

    def test_empty_values_rejected(self):
        with pytest.raises(ConfigurationError):
            sweep(paper_parameters(), "hep", [], "conventional")

    def test_unknown_backend_rejected(self):
        with pytest.raises(ConfigurationError):
            sweep(paper_parameters(), "hep", [0.01], "conventional", backend="psychic")

    def test_axis_aliases(self):
        base = paper_parameters(hep=0.01)
        assert SWEEP_AXES["failure_rate"] == "disk_failure_rate"
        a = sweep(base, "failure_rate", [1e-6], "conventional")
        b = sweep(base, "disk_failure_rate", [1e-6], "conventional")
        assert a[0].availability == b[0].availability

    def test_monte_carlo_backend_attaches_intervals(self):
        points = sweep(
            FAST_PARAMS, "hep", [0.01, 0.05], "conventional",
            backend="monte_carlo", mc_iterations=500, seed=2,
        )
        for point in points:
            assert point.has_interval
            assert point.ci_lower <= point.availability <= point.ci_upper
            assert {"ci_lower", "ci_upper"} <= set(point.as_dict())

    def test_auto_backend_uses_monte_carlo_for_chainless_policy(self):
        from repro.core.policies import hot_spare_policy

        points = sweep(
            FAST_PARAMS, "hep", [0.05], hot_spare_policy(2),
            backend="auto", mc_iterations=400, seed=2,
        )
        assert points[0].has_interval

    def test_analytical_points_keep_legacy_dict_shape(self):
        point = sweep_hep(paper_parameters(), [0.01])[0]
        assert set(point.as_dict()) == {"x", "availability", "unavailability", "nines"}

    def test_sweep_policies_accepts_custom_policy_instances(self):
        from repro.core.policies import get_policy

        series = sweep_policies(
            paper_parameters(), [0.001, 0.01],
            models=[get_policy("conventional"), "automatic_failover"],
        )
        assert set(series) == {"conventional", "automatic_failover"}

    def test_per_point_mc_sweep_matches_single_study(self):
        # The retained per-point engine keeps the pre-stacked guarantee: a
        # one-point sweep is bitwise the same run as a single study.
        from repro.core.evaluation import evaluate

        points = sweep(
            FAST_PARAMS, "hep", [0.05], "conventional",
            backend="monte_carlo", mc_iterations=600, seed=9,
            mc_engine="per_point",
        )
        single = evaluate(
            FAST_PARAMS.with_hep(0.05), "conventional", backend="monte_carlo",
            n_iterations=600, seed=9,
        )
        assert points[0].availability == single.availability
        assert points[0].ci_lower == single.ci_lower

    def test_stacked_mc_sweep_agrees_with_single_study(self):
        # The stacked default lays its streams out per shard (spawn index
        # 0, 1, ...), so it matches a single study at the statistical level:
        # the 99 % intervals of the two estimates of the same scenario must
        # overlap.
        from repro.core.evaluation import evaluate

        points = sweep(
            FAST_PARAMS, "hep", [0.05], "conventional",
            backend="monte_carlo", mc_iterations=600, seed=9,
        )
        single = evaluate(
            FAST_PARAMS.with_hep(0.05), "conventional", backend="monte_carlo",
            n_iterations=600, seed=9,
        )
        assert points[0].has_interval
        low = max(points[0].ci_lower, single.ci_lower)
        high = min(points[0].ci_upper, single.ci_upper)
        assert low <= high
