"""Unit tests for the shared availability parameter set."""

from __future__ import annotations

import pytest

from repro.core.parameters import AvailabilityParameters, paper_parameters
from repro.distributions import Exponential, Weibull
from repro.exceptions import ConfigurationError
from repro.storage.raid import RaidGeometry


class TestDefaults:
    def test_paper_defaults(self):
        params = paper_parameters()
        assert params.geometry.label == "RAID5(3+1)"
        assert params.disk_repair_rate == pytest.approx(0.1)
        assert params.ddf_recovery_rate == pytest.approx(0.03)
        assert params.human_error_rate == pytest.approx(1.0)
        assert params.spare_replacement_rate == pytest.approx(1.0)
        assert params.crash_rate == pytest.approx(0.01)
        assert params.hep == pytest.approx(0.001)

    def test_n_disks_and_success_probability(self):
        params = paper_parameters(hep=0.01)
        assert params.n_disks == 4
        assert params.success_probability == pytest.approx(0.99)

    def test_mean_time_to_disk_failure(self):
        assert paper_parameters(disk_failure_rate=1e-6).mean_time_to_disk_failure() == pytest.approx(1e6)


class TestDistributions:
    def test_exponential_failure_by_default(self):
        assert isinstance(paper_parameters().failure_distribution(), Exponential)

    def test_weibull_when_shape_not_one(self):
        params = paper_parameters(failure_shape=1.12, disk_failure_rate=1e-6)
        dist = params.failure_distribution()
        assert isinstance(dist, Weibull)
        assert dist.mean() == pytest.approx(1e6, rel=1e-9)

    def test_service_distributions_mean(self):
        params = paper_parameters()
        assert params.repair_distribution().mean() == pytest.approx(10.0)
        assert params.ddf_recovery_distribution().mean() == pytest.approx(1 / 0.03)
        assert params.human_error_recovery_distribution().mean() == pytest.approx(1.0)
        assert params.spare_replacement_distribution().mean() == pytest.approx(1.0)


class TestDerivation:
    def test_with_hep(self):
        params = paper_parameters(hep=0.001)
        changed = params.with_hep(0.01)
        assert changed.hep == 0.01 and params.hep == 0.001

    def test_with_failure_rate_and_shape(self):
        changed = paper_parameters().with_failure_rate(2e-5, shape=1.48)
        assert changed.disk_failure_rate == 2e-5
        assert changed.failure_shape == 1.48

    def test_with_geometry(self):
        changed = paper_parameters().with_geometry(RaidGeometry.raid5(7))
        assert changed.n_disks == 8

    def test_without_human_error(self):
        assert paper_parameters(hep=0.01).without_human_error().hep == 0.0

    def test_as_dict(self):
        payload = paper_parameters().as_dict()
        assert payload["geometry"] == "RAID5(3+1)"
        assert payload["hep"] == 0.001


class TestValidation:
    @pytest.mark.parametrize(
        "field,value",
        [
            ("disk_failure_rate", 0.0),
            ("disk_repair_rate", -1.0),
            ("ddf_recovery_rate", 0.0),
            ("human_error_rate", 0.0),
            ("spare_replacement_rate", 0.0),
            ("crash_rate", -0.1),
            ("failure_shape", 0.0),
        ],
    )
    def test_invalid_rates_rejected(self, field, value):
        kwargs = {field: value}
        with pytest.raises(ConfigurationError):
            AvailabilityParameters(**kwargs)

    def test_invalid_hep_rejected(self):
        with pytest.raises(ConfigurationError):
            AvailabilityParameters(hep=1.5)

    def test_zero_crash_rate_allowed(self):
        assert AvailabilityParameters(crash_rate=0.0).crash_rate == 0.0
