"""Tests for the fused whole-event-loop kernel backend (``kernel="fused"``).

The fused loops own their draw discipline, so the cross-backend bit-identity
oracle of ``tests/core/test_compiled.py`` cannot apply.  The contract under
test here is the statistically-pinned protocol instead:

- **within the fused backend** determinism stays exact — the same seed gives
  the same batch across runs, pools and worker counts, and
  ``replay_stacked_point`` reproduces any fused grid entry bit-for-bit;
- **across backends** the fused estimates must agree statistically with the
  numpy oracle (confidence-interval overlap per policy x geometry x
  biasing) and with the analytical faces (the cross-validation experiment
  run on ``kernel="fused"``).

Without numba the fused loops run as plain Python on the identical stream
(numba compiles ``Generator.random()`` over the same PCG64 bit generator,
so jitted and interpreted loops draw the same doubles); the suite opts into
that fallback via ``REPRO_FUSED_PUREPY`` so every assertion here runs in
numba-free environments too — the CI ``compiled-smoke`` job repeats them
against the actual nopython compiles.
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np
import pytest

from repro.core.montecarlo import (
    MonteCarloConfig,
    fused_available,
    has_compiled_face,
    has_fused_face,
    kernel_context,
    replay_stacked_point,
    resolve_kernel,
    run_batch,
    run_batch_lifetimes,
    run_fused_batch,
    run_sharded,
    run_stacked,
)
from repro.core.montecarlo.compiled import compiled_available
from repro.core.montecarlo.fused import FUSED_PUREPY_ENV, fused_face, jit_enabled
from repro.core.parameters import paper_parameters
from repro.core.policies import available_policies
from repro.core.policies.registry import resolve_policy
from repro.exceptions import ConfigurationError
from repro.experiments.cross_validation import all_within_ci, run_cross_validation
from repro.simulation.rng import RandomStreams
from repro.storage.raid import RaidGeometry

needs_no_numba = pytest.mark.skipif(
    compiled_available(), reason="numba is installed; fallback paths unreachable"
)

#: Event-rich operating point (as in test_compiled.py): frequent downtime
#: makes any semantic divergence visible within a few hundred lifetimes.
STRESS = paper_parameters(disk_failure_rate=1e-4, hep=0.05)
HORIZON = 20_000.0


@pytest.fixture(autouse=True)
def _purepy_fallback(monkeypatch):
    """Opt into the pure-Python fused loops when numba is absent.

    The env flag is inherited by forked process-pool workers, so the whole
    suite runs identically with and without numba.
    """
    if not jit_enabled():
        monkeypatch.setenv(FUSED_PUREPY_ENV, "1")
    yield


def _config(n=600, seed=7, **overrides):
    overrides.setdefault("params", STRESS)
    overrides.setdefault("policy", "conventional")
    overrides.setdefault("kernel", "fused")
    return MonteCarloConfig(
        n_iterations=n, horizon_hours=HORIZON, seed=seed, **overrides
    )


def _grid_configs(heps=(0.02, 0.05), n=300, seed=11, **overrides):
    return [
        _config(
            n=n,
            seed=seed,
            params=paper_parameters(disk_failure_rate=1e-4, hep=hep),
            **overrides,
        )
        for hep in heps
    ]


def _assert_results_identical(a, b):
    assert a.availability == b.availability
    assert a.interval.lower == b.interval.lower
    assert a.interval.upper == b.interval.upper
    assert a.n_iterations == b.n_iterations
    assert a.totals == b.totals


def _assert_intervals_overlap(got, ref):
    assert abs(got.availability - ref.availability) <= (
        ref.interval.half_width + got.interval.half_width
    )


class TestFusedResolution:
    def test_fused_resolves_when_available(self):
        assert fused_available()
        assert resolve_kernel("fused") == "fused"

    @pytest.mark.filterwarnings("ignore::RuntimeWarning")
    def test_auto_never_resolves_to_fused(self):
        assert resolve_kernel("auto") in ("numpy", "compiled")

    @needs_no_numba
    def test_fused_without_numba_or_optin_is_an_error(self, monkeypatch):
        monkeypatch.delenv(FUSED_PUREPY_ENV, raising=False)
        assert not fused_available()
        with pytest.raises(ConfigurationError, match=FUSED_PUREPY_ENV):
            resolve_kernel("fused")

    def test_kernel_context_refuses_fused(self):
        with pytest.raises(ConfigurationError, match="run_fused_batch"):
            with kernel_context("fused"):
                pass  # pragma: no cover - the context must not be entered

    def test_fused_kernel_rejects_scalar_executor(self):
        with pytest.raises(ConfigurationError, match="scalar"):
            _config(executor="scalar")

    def test_fused_kernel_rejects_trace_collection(self):
        with pytest.raises(ConfigurationError, match="trace"):
            _config(collect_trace=True)


class TestFusedFaces:
    def test_every_registered_policy_has_a_fused_face(self):
        # All five families route through a fused loop — including erasure,
        # which the sliced compiled backend could never accelerate.
        for name in available_policies():
            assert has_fused_face(resolve_policy(name)), name

    def test_erasure_gains_its_compiled_face_through_fused(self):
        assert has_compiled_face(resolve_policy("erasure")) is True

    def test_partial_kwargs_are_collected(self):
        family, bound = fused_face(resolve_policy("hot_spare_pool"))
        assert family == "spare_pool"
        assert bound["n_spares"] >= 2
        family, bound = fused_face(resolve_policy("erasure"))
        assert family == "erasure"
        assert "scheme" in bound

    def test_no_batch_kernel_means_no_fused_face(self):
        class Scalar:
            batch = None

        assert has_fused_face(Scalar()) is False
        with pytest.raises(ConfigurationError, match="no fused event"):
            run_fused_batch(Scalar(), STRESS, HORIZON, 100, RandomStreams(0))


class TestFusedErrors:
    def test_erasure_rejects_biasing(self):
        with pytest.raises(ConfigurationError, match="biasing"):
            run_fused_batch(
                resolve_policy("erasure"), STRESS, HORIZON, 100, RandomStreams(0),
                biasing=4.0,
            )

    def test_erasure_rejects_weibull_shares(self):
        weibull = paper_parameters(disk_failure_rate=1e-3, failure_shape=1.5)
        with pytest.raises(ConfigurationError, match="exponential"):
            run_fused_batch(
                resolve_policy("erasure"), weibull, HORIZON, 100, RandomStreams(0)
            )

    def test_invalid_biasing_rejected(self):
        with pytest.raises(ConfigurationError, match="positive"):
            run_fused_batch(
                resolve_policy("conventional"), STRESS, HORIZON, 100,
                RandomStreams(0), biasing=-2.0,
            )


class TestFusedDeterminism:
    """Within the fused backend, determinism stays exact."""

    def test_same_seed_same_batch(self):
        a = run_batch_lifetimes(_config())
        b = run_batch_lifetimes(_config())
        assert np.array_equal(a.downtime_hours, b.downtime_hours)
        assert np.array_equal(a.disk_failures, b.disk_failures)
        assert np.array_equal(a.dl_events, b.dl_events)

    def test_fused_draws_differ_from_numpy(self):
        # Same lineage, distinct named stream: the backends must not share
        # draws (that is what forces the statistically-pinned protocol).
        fused = run_batch_lifetimes(_config())
        ref = run_batch_lifetimes(_config(kernel="numpy"))
        assert not np.array_equal(fused.downtime_hours, ref.downtime_hours)

    def test_workers_bit_identical_single_point(self):
        reference = run_sharded(_config(shard_size=200, workers=1))
        for workers in (2, 4):
            _assert_results_identical(
                run_sharded(_config(shard_size=200, workers=workers)), reference
            )

    @pytest.mark.parametrize("pool", ["thread", "serial"])
    def test_pools_bit_identical(self, pool):
        reference = run_sharded(_config(shard_size=200, workers=2))
        _assert_results_identical(
            run_sharded(_config(shard_size=200, workers=2, pool=pool)), reference
        )

    def test_stacked_workers_bit_identical(self):
        reference = run_stacked(_grid_configs())
        for workers in (2, 4):
            got = run_stacked(_grid_configs(workers=workers))
            for a, b in zip(got, reference):
                _assert_results_identical(a, b)

    def test_adaptive_biased_ci_width_workers_bit_identical(self):
        # The acceptance bar: stacked + adaptive ci_width + biased, fused
        # workers=N bit-identical to workers=1.
        def configs(workers):
            return _grid_configs(
                n=240,
                workers=workers,
                biasing=3.0,
                target_half_width=2e-5,
                max_iterations=960,
                allocator="ci_width",
            )

        reference = run_stacked(configs(1))
        for workers in (2, 4):
            got = run_stacked(configs(workers))
            for a, b in zip(got, reference):
                _assert_results_identical(a, b)

    def test_replay_reproduces_fused_grid_point(self):
        configs = _grid_configs(biasing=3.0)
        grid = run_stacked(configs)
        for index in range(len(configs)):
            _assert_results_identical(replay_stacked_point(configs, index), grid[index])

    def test_erasure_fused_stacked_workers_bit_identical(self):
        params = paper_parameters(disk_failure_rate=1e-3, hep=0.1)
        configs = [
            _config(n=300, policy="erasure", params=replace(params, hep=hep))
            for hep in (0.05, 0.1)
        ]
        reference = run_stacked(configs)
        got = run_stacked([replace(c, workers=2) for c in configs])
        for a, b in zip(got, reference):
            _assert_results_identical(a, b)


class TestFusedStatisticalPin:
    """Across backends, fused must agree with numpy within joint CI width."""

    GEOMETRIES = [RaidGeometry.raid5(3), RaidGeometry.raid6(4)]

    @pytest.mark.parametrize("policy", [
        "conventional", "baseline", "automatic_failover", "hot_spare_pool",
    ])
    @pytest.mark.parametrize("geometry_index", [0, 1])
    @pytest.mark.parametrize("biasing", [None, 4.0])
    def test_fused_interval_overlaps_numpy(self, policy, geometry_index, biasing):
        params = paper_parameters(
            geometry=self.GEOMETRIES[geometry_index],
            disk_failure_rate=1e-4,
            hep=0.05,
        )
        kwargs = dict(n=900, params=params, policy=policy, biasing=biasing)
        got = run_batch(_config(seed=5, **kwargs))
        ref = run_batch(_config(seed=17, kernel="numpy", **kwargs))
        _assert_intervals_overlap(got, ref)

    def test_erasure_fused_interval_overlaps_numpy(self):
        params = paper_parameters(disk_failure_rate=1e-3, hep=0.1)
        kwargs = dict(n=900, params=params, policy="erasure")
        got = run_batch(_config(seed=5, **kwargs))
        ref = run_batch(_config(seed=17, kernel="numpy", **kwargs))
        _assert_intervals_overlap(got, ref)

    def test_analytical_inside_fused_ci_for_dual_face_policies(self):
        # The cross-validation experiment on kernel="fused": the analytical
        # steady-state availability must fall inside the fused Monte Carlo
        # interval for every continuous-repair dual-face policy.
        rows = run_cross_validation(
            mc_iterations=2400,
            mc_horizon_hours=40_000.0,
            seed=3,
            kernel="fused",
        )
        assert all_within_ci(rows), [(r.policy, r.within_ci) for r in rows]

    def test_analytical_inside_fused_ci_for_erasure(self):
        # The periodic checker family validates at an event-rich operating
        # point (the default one is event-starved; see cross_validation.py).
        rows = run_cross_validation(
            params=paper_parameters(
                geometry=RaidGeometry.erasure(3, 10),
                disk_failure_rate=1e-3,
                hep=0.1,
            ),
            policies=["erasure"],
            mc_iterations=2400,
            mc_horizon_hours=40_000.0,
            seed=3,
            kernel="fused",
        )
        assert all_within_ci(rows), [(r.policy, r.within_ci) for r in rows]
