"""Tests for the rare-event engine: importance-sampled kernels, weighted
streaming aggregation and the CI-width-driven adaptive grid allocator.

The statistical contract under test: failure biasing must leave every
availability estimate unbiased (the per-lifetime likelihood-ratio weights
undo the inflated failure rates exactly), the weighted merge must stay
bit-identical across worker counts, and ``biasing=None`` must remain the
untouched historical code path.
"""

from __future__ import annotations

import warnings

import numpy as np
import pytest

import importlib

# `repro.core` re-exports the sweep *function* under the same name as the
# submodule, so a plain `import repro.core.sweep as ...` binds the function.
sweep_module = importlib.import_module("repro.core.sweep")
from repro.core.evaluation import evaluate
from repro.core.montecarlo import MonteCarloConfig, run_monte_carlo
from repro.core.montecarlo.parallel import (
    replay_stacked_point,
    run_stacked_sharded,
)
from repro.core.parameters import paper_parameters
from repro.core.policies import get_policy
from repro.core.policies.base import SimulationPolicy
from repro.exceptions import ConfigurationError, SimulationError
from repro.simulation.confidence import StreamingMoments, segmented_moments
from repro.simulation.rng import RandomStreams

#: The paper's dual-face policies: every one pairs a batch kernel with an
#: analytical chain, so an importance-sampled estimate can be checked
#: against the exact steady-state availability.
DUAL_FACE_POLICIES = ("conventional", "automatic_failover", "baseline")

#: Rare scenario of the unbiasedness suite: a five-nines-plus array where
#: the unbiased estimator sees almost no events at test-sized budgets, but
#: the measure change at ``BIASING`` stays tame (lambda * horizon * biasing
#: well below one failure per disk).
RARE = dict(disk_failure_rate=1e-6, hep=0.002)
BIASING = 8.0

#: Exaggerated stress point (as used by the parallel executor tests) where
#: confidence intervals resolve within a few thousand lifetimes — keeps
#: the adaptive-allocator tests fast.
STRESS = dict(disk_failure_rate=1e-4, hep=0.05)
HORIZON = 50_000.0


def _stress_config(**overrides) -> MonteCarloConfig:
    defaults = dict(
        params=paper_parameters(**STRESS),
        n_iterations=2000,
        horizon_hours=HORIZON,
        seed=13,
    )
    defaults.update(overrides)
    return MonteCarloConfig(**defaults)


# ----------------------------------------------------------------------
# Configuration hygiene
# ----------------------------------------------------------------------
class TestBiasingConfig:
    def test_biasing_must_be_positive(self):
        for bad in (0.0, -2.0):
            with pytest.raises(ConfigurationError):
                MonteCarloConfig(biasing=bad)

    def test_biasing_rejects_scalar_executor(self):
        with pytest.raises(ConfigurationError, match="scalar"):
            MonteCarloConfig(biasing=2.0, executor="scalar")

    def test_biasing_rejects_event_traces(self):
        with pytest.raises(ConfigurationError, match="trace"):
            MonteCarloConfig(biasing=2.0, collect_trace=True)

    def test_unknown_allocator_rejected(self):
        with pytest.raises(ConfigurationError, match="allocator"):
            MonteCarloConfig(allocator="widest_first")

    def test_adaptive_ceiling_cannot_undercut_first_round(self):
        with pytest.raises(ConfigurationError, match="max_iterations"):
            MonteCarloConfig(
                n_iterations=10_000,
                max_iterations=5000,
                target_half_width=1e-5,
            )
        # Without a target the ceiling is documented as ignored, and stays
        # unvalidated for backward compatibility.
        config = MonteCarloConfig(n_iterations=10_000, max_iterations=5000)
        assert config.max_iterations == 5000

    def test_with_biasing_and_with_allocator_round_trip(self):
        config = MonteCarloConfig().with_biasing(3.0).with_allocator("ci_width")
        assert config.biasing == 3.0
        assert config.allocator == "ci_width"
        assert config.with_biasing(None).biasing is None

    def test_biasing_requires_a_batch_kernel(self):
        # A scalar-only policy resolving executor="auto" to the scalar loop
        # must refuse biasing rather than silently ignore it.
        scalar_only = SimulationPolicy(
            name="scalar_only",
            description="test stub without a batch kernel",
            scalar=get_policy("conventional").scalar,
        )
        config = _stress_config(policy=scalar_only, biasing=2.0)
        with pytest.raises(ConfigurationError, match="batch"):
            run_monte_carlo(config)


# ----------------------------------------------------------------------
# Weighted streaming moments
# ----------------------------------------------------------------------
class TestWeightedMoments:
    def test_unweighted_from_samples_carries_count_as_weight(self):
        samples = np.array([0.2, 0.4, 0.9])
        moments = StreamingMoments.from_samples(samples)
        assert moments.w_sum == 3.0
        assert moments.w2_sum == 3.0
        assert moments.ess() == 3.0

    def test_weight_validation(self):
        samples = np.array([0.5, 0.5])
        with pytest.raises(SimulationError):
            StreamingMoments.from_samples(samples, weights=np.array([1.0, -0.5]))
        with pytest.raises(SimulationError):
            StreamingMoments.from_samples(samples, weights=np.array([1.0]))
        with pytest.raises(SimulationError):
            StreamingMoments.from_samples(samples, weights=np.array([1.0, np.inf]))

    def test_ess_matches_kish_formula(self):
        weights = np.array([0.5, 2.0, 1.0, 0.1])
        moments = StreamingMoments.from_samples(np.ones(4), weights=weights)
        expected = weights.sum() ** 2 / np.square(weights).sum()
        assert moments.ess() == pytest.approx(expected, rel=1e-15)

    def test_weighted_merge_parity_to_1e12(self):
        rng = np.random.default_rng(5)
        samples = rng.uniform(0.9, 1.0, size=1000)
        weights = rng.lognormal(0.0, 0.7, size=1000)
        whole = StreamingMoments.from_samples(samples, weights=weights)
        merged = StreamingMoments()
        for part in (slice(0, 137), slice(137, 500), slice(500, 1000)):
            merged = merged.merge(
                StreamingMoments.from_samples(samples[part], weights=weights[part])
            )
        assert merged.n == whole.n
        assert merged.mean == pytest.approx(whole.mean, abs=1e-15)
        assert merged.m2 == pytest.approx(whole.m2, rel=1e-12)
        assert merged.w_sum == pytest.approx(whole.w_sum, rel=1e-12)
        assert merged.w2_sum == pytest.approx(whole.w2_sum, rel=1e-12)
        assert merged.variance() == pytest.approx(
            float(np.var(samples, ddof=1)), rel=1e-12
        )

    def test_segmented_moments_match_per_segment_from_samples(self):
        rng = np.random.default_rng(6)
        samples = rng.uniform(size=60)
        weights = rng.lognormal(size=60)
        counts = [10, 25, 25]
        segments = segmented_moments(samples, counts, weights=weights)
        offset = 0
        for count, segment in zip(counts, segments):
            direct = StreamingMoments.from_samples(
                samples[offset : offset + count],
                weights=weights[offset : offset + count],
            )
            assert segment.mean == pytest.approx(direct.mean, abs=1e-15)
            assert segment.m2 == pytest.approx(direct.m2, rel=1e-12)
            assert segment.w_sum == pytest.approx(direct.w_sum, rel=1e-12)
            assert segment.w2_sum == pytest.approx(direct.w2_sum, rel=1e-12)
            offset += count


# ----------------------------------------------------------------------
# Importance-sampled kernels
# ----------------------------------------------------------------------
class TestBiasedKernels:
    def test_biasing_none_is_the_historical_path(self):
        policy = get_policy("conventional")
        params = paper_parameters(**STRESS)

        def run(**kwargs):
            rng = RandomStreams(21).stream("montecarlo")
            return policy.simulate_batch(params, HORIZON, 3000, rng, **kwargs)

        plain = run()
        explicit = run(biasing=None)
        assert plain.log_weights is None and explicit.log_weights is None
        np.testing.assert_array_equal(
            plain.availabilities(), explicit.availabilities()
        )
        np.testing.assert_array_equal(
            plain.weighted_availabilities(), plain.availabilities()
        )

    @pytest.mark.parametrize("policy_name", ["conventional", "hot_spare_pool"])
    def test_compact_and_gathered_biased_paths_agree(self, policy_name):
        policy = get_policy(policy_name)
        params = paper_parameters(**RARE)

        def run(compact):
            rng = RandomStreams(3).stream("montecarlo")
            return policy.batch(
                params, HORIZON, 2000, rng, compact=compact, biasing=4.0
            )

        compacted, gathered = run(True), run(False)
        np.testing.assert_array_equal(
            compacted.availabilities(), gathered.availabilities()
        )
        np.testing.assert_array_equal(
            compacted.log_weights, gathered.log_weights
        )

    def test_biased_weights_are_finite_and_centred(self):
        policy = get_policy("conventional")
        params = paper_parameters(**RARE)
        rng = RandomStreams(9).stream("montecarlo")
        batch = policy.simulate_batch(params, 87_600.0, 20_000, rng, biasing=BIASING)
        weights = batch.weights()
        assert np.all(np.isfinite(weights))
        # E_Q[dP/dQ] = 1: the empirical mean weight must sit near one in
        # the tame regime (it collapsing toward zero is the degeneracy
        # signature of an off-regime measure change).
        assert 0.5 < weights.mean() < 2.0

    @pytest.mark.parametrize("policy_name", DUAL_FACE_POLICIES)
    def test_importance_sampled_estimate_covers_analytical(self, policy_name):
        est = evaluate(
            paper_parameters(**RARE),
            policy=policy_name,
            backend="monte_carlo",
            n_iterations=40_000,
            seed=11,
            biasing=BIASING,
        )
        assert est.analytical_reference is not None
        assert est.contains(est.analytical_reference)
        # The unbiased estimator would need ~1/unavailability lifetimes to
        # see its first event; the biased run resolves a positive estimate
        # from 40k.
        assert est.unavailability > 0.0

    def test_ess_reported_only_for_biased_runs(self):
        biased = run_monte_carlo(
            _stress_config(params=paper_parameters(**RARE), biasing=4.0)
        )
        plain = run_monte_carlo(_stress_config())
        assert biased.ess is not None and 0 < biased.ess <= biased.n_iterations
        assert plain.ess is None
        assert biased.as_dict()["ess"] == biased.ess


# ----------------------------------------------------------------------
# Weighted merges across worker counts
# ----------------------------------------------------------------------
class TestWeightedWorkerIdentity:
    def test_sharded_biased_run_is_worker_count_invariant(self):
        base = _stress_config(
            params=paper_parameters(**RARE),
            n_iterations=8000,
            shard_size=2000,
            biasing=BIASING,
            seed=11,
        )
        reference = run_monte_carlo(base.with_workers(1))
        for workers in (2, 4):
            result = run_monte_carlo(base.with_workers(workers))
            assert result.availability == reference.availability
            assert result.interval == reference.interval
            assert result.ess == reference.ess
            assert result.totals == reference.totals

    def test_stacked_biased_grid_is_worker_count_invariant(self):
        configs = [
            _stress_config(
                params=paper_parameters(disk_failure_rate=rate, hep=0.0),
                n_iterations=4000,
                biasing=5.0,
                seed=7,
            )
            for rate in (1e-6, 2e-6)
        ]
        reference = run_stacked_sharded(configs)
        for workers in (2,):
            results = run_stacked_sharded(
                [config.with_workers(workers) for config in configs]
            )
            for got, want in zip(results, reference):
                assert got.availability == want.availability
                assert got.interval == want.interval
                assert got.ess == want.ess


# ----------------------------------------------------------------------
# CI-width-driven adaptive allocation on stacked grids
# ----------------------------------------------------------------------
class TestAdaptiveAllocator:
    TARGET = 2e-6
    CEILING = 60_000

    def _grid(self, allocator, workers=1):
        return [
            _stress_config(
                params=paper_parameters(disk_failure_rate=rate, hep=0.01),
                horizon_hours=87_600.0,
                seed=2017,
                n_iterations=2000,
                target_half_width=self.TARGET,
                max_iterations=self.CEILING,
                allocator=allocator,
                workers=workers,
            )
            for rate in (2e-5, 5e-5, 1e-4)
        ]

    @pytest.mark.parametrize("allocator", ["uniform", "ci_width"])
    def test_allocator_reaches_target_or_ceiling(self, allocator):
        for result in run_stacked_sharded(self._grid(allocator)):
            assert (
                result.interval.half_width <= self.TARGET
                or result.n_iterations >= self.CEILING
            )

    def test_ci_width_spends_no_more_than_uniform(self):
        uniform = run_stacked_sharded(self._grid("uniform"))
        ci_width = run_stacked_sharded(self._grid("ci_width"))
        assert sum(r.n_iterations for r in ci_width) <= sum(
            r.n_iterations for r in uniform
        )
        # The easy point met the target in round one under both disciplines.
        assert uniform[0].n_iterations == ci_width[0].n_iterations == 2000

    @pytest.mark.parametrize("allocator", ["uniform", "ci_width"])
    def test_adaptive_grid_is_worker_count_invariant(self, allocator):
        reference = run_stacked_sharded(self._grid(allocator))
        for workers in (2, 4):
            results = run_stacked_sharded(self._grid(allocator, workers=workers))
            for got, want in zip(results, reference):
                assert got.availability == want.availability
                assert got.interval == want.interval
                assert got.n_iterations == want.n_iterations
                assert got.totals == want.totals

    def test_adaptive_point_replay_matches_grid(self):
        configs = self._grid("ci_width")
        grid = run_stacked_sharded(configs)
        replayed = replay_stacked_point(configs, 1)
        assert replayed.availability == grid[1].availability
        assert replayed.interval == grid[1].interval
        assert replayed.n_iterations == grid[1].n_iterations

    def test_adaptive_rejects_common_random_numbers(self):
        with pytest.raises(ConfigurationError, match="common-random-numbers"):
            run_stacked_sharded(self._grid("ci_width"), crn=True)


# ----------------------------------------------------------------------
# Replay of biased non-adaptive stacked grids
# ----------------------------------------------------------------------
class TestBiasedReplay:
    def test_nonadaptive_replay_forwards_biasing(self):
        # Regression pin: the non-adaptive replay path must forward the
        # grid's biasing factor into the replayed shard run.  Dropping it
        # re-simulates the point under the unbiased measure on the same
        # stream — a silently different estimate, not an error.
        configs = [
            _stress_config(
                params=paper_parameters(disk_failure_rate=rate, hep=0.01),
                n_iterations=1200,
                seed=2017,
                biasing=BIASING,
            )
            for rate in (2e-5, 1e-4)
        ]
        grid = run_stacked_sharded(configs)
        for index in range(len(configs)):
            replayed = replay_stacked_point(configs, index)
            assert replayed.availability == grid[index].availability
            assert replayed.interval == grid[index].interval
            assert replayed.n_iterations == grid[index].n_iterations
            assert replayed.totals == grid[index].totals


# ----------------------------------------------------------------------
# Adaptive sweep fallback
# ----------------------------------------------------------------------
class TestAdaptiveSweepFallback:
    @pytest.fixture(autouse=True)
    def _reset_warn_flag(self):
        sweep_module._ADAPTIVE_FALLBACK_WARNED = False
        yield
        sweep_module._ADAPTIVE_FALLBACK_WARNED = False

    def test_scalar_adaptive_sweep_warns_once_and_still_runs(self):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            points = sweep_module.sweep(
                paper_parameters(**STRESS),
                "hep",
                [0.02, 0.05],
                backend="monte_carlo",
                mc_iterations=500,
                mc_horizon_hours=HORIZON,
                seed=3,
                executor="scalar",
                target_half_width=5e-3,
            )
        fallback = [
            w for w in caught if "stacked allocator" in str(w.message)
        ]
        assert len(fallback) == 1
        assert len(points) == 2 and all(p.has_interval for p in points)

    def test_explicit_per_point_engine_stays_silent(self):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            sweep_module.sweep(
                paper_parameters(**STRESS),
                "hep",
                [0.02],
                backend="monte_carlo",
                mc_iterations=500,
                mc_horizon_hours=HORIZON,
                seed=3,
                mc_engine="per_point",
                target_half_width=5e-3,
            )
        assert not [w for w in caught if "stacked allocator" in str(w.message)]

    def test_adaptive_stacked_sweep_uses_allocator(self):
        # A stackable adaptive sweep must run without warnings and meet the
        # target — the configuration that raised before the allocator.
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            points = sweep_module.sweep(
                paper_parameters(hep=0.01),
                "failure_rate",
                [2e-5, 5e-5],
                backend="monte_carlo",
                mc_iterations=2000,
                seed=2017,
                target_half_width=2e-6,
                allocator="ci_width",
            )
        assert not [w for w in caught if "stacked allocator" in str(w.message)]
        for point in points:
            assert 0.5 * (point.ci_upper - point.ci_lower) <= 2e-6

    def test_biasing_rejected_on_analytical_backend(self):
        with pytest.raises(ConfigurationError, match="monte_carlo"):
            sweep_module.sweep(
                paper_parameters(**STRESS),
                "hep",
                [0.02],
                backend="analytical",
                biasing=4.0,
            )
