"""Unit tests for the paper's Markov availability models (Figs. 2 and 3)."""

from __future__ import annotations

import pytest

from repro.core.evaluation import analytical_policies, analytical_result
from repro.core.models import (
    baseline_availability,
    build_baseline_chain,
    build_conventional_chain,
    build_failover_chain,
    conventional_availability,
    failover_availability,
)
from repro.core.policies import resolve_policy
from repro.core.models.raid5_conventional import unavailability_breakdown as conventional_breakdown
from repro.core.models.raid5_failover import unavailability_breakdown as failover_breakdown
from repro.core.parameters import paper_parameters
from repro.exceptions import ConfigurationError, RaidConfigurationError
from repro.markov import validate_chain
from repro.storage.raid import RaidGeometry


class TestBaselineModel:
    def test_structure(self):
        chain = build_baseline_chain(paper_parameters(hep=0.0))
        assert set(chain.state_names) == {"OP", "EXP", "DL"}
        assert chain.rate("OP", "EXP") == pytest.approx(4e-6)
        assert chain.rate("EXP", "DL") == pytest.approx(3e-6)
        assert chain.rate("EXP", "OP") == pytest.approx(0.1)
        assert chain.rate("DL", "OP") == pytest.approx(0.03)

    def test_closed_form_unavailability(self):
        params = paper_parameters(disk_failure_rate=1e-6, hep=0.0)
        result = baseline_availability(params)
        # pi_DL ~= (n*lam/mu_DF) * ((n-1)*lam/mu_DDF) for small rates.
        approx = (4e-6 / 0.1) * (3e-6 / 0.03)
        assert result.unavailability == pytest.approx(approx, rel=1e-2)

    def test_raid6_baseline_has_two_exposed_states(self):
        params = paper_parameters(geometry=RaidGeometry.raid6(6), hep=0.0)
        chain = build_baseline_chain(params)
        assert set(chain.state_names) == {"OP", "EXP1", "EXP2", "DL"}
        result = baseline_availability(params)
        assert result.availability > 0.999999

    def test_raid0_rejected(self):
        with pytest.raises(RaidConfigurationError):
            build_baseline_chain(paper_parameters(geometry=RaidGeometry.raid0(4)))


class TestConventionalModel:
    def test_fig2_structure(self, paper_params):
        chain = build_conventional_chain(paper_params)
        assert set(chain.state_names) == {"OP", "EXP", "DU", "DL"}
        n, lam = 4, paper_params.disk_failure_rate
        hep = paper_params.hep
        assert chain.rate("OP", "EXP") == pytest.approx(n * lam)
        assert chain.rate("EXP", "DL") == pytest.approx((n - 1) * lam)
        assert chain.rate("EXP", "DU") == pytest.approx(hep * 0.1)
        assert chain.rate("EXP", "OP") == pytest.approx((1 - hep) * 0.1)
        assert chain.rate("DU", "OP") == pytest.approx((1 - hep) * 1.0)
        assert chain.rate("DU", "DL") == pytest.approx(0.01)
        assert chain.rate("DL", "OP") == pytest.approx(0.03)
        validate_chain(chain)

    def test_up_down_partition(self, paper_params):
        chain = build_conventional_chain(paper_params)
        assert set(chain.up_states()) == {"OP", "EXP"}
        assert set(chain.down_states()) == {"DU", "DL"}

    def test_hep_zero_collapses_to_baseline(self):
        params = paper_parameters(hep=0.0)
        conventional = conventional_availability(params)
        baseline = baseline_availability(params)
        assert conventional.availability == pytest.approx(baseline.availability, rel=1e-12)
        assert "DU" not in build_conventional_chain(params).state_names

    def test_availability_decreases_with_hep(self):
        values = [
            conventional_availability(paper_parameters(hep=hep)).availability
            for hep in (0.0, 0.001, 0.01, 0.1)
        ]
        assert values == sorted(values, reverse=True)

    def test_availability_decreases_with_failure_rate(self):
        values = [
            conventional_availability(paper_parameters(disk_failure_rate=rate)).availability
            for rate in (1e-7, 1e-6, 1e-5, 1e-4)
        ]
        assert values == sorted(values, reverse=True)

    def test_du_probability_scales_linearly_with_hep(self):
        small = conventional_breakdown(paper_parameters(hep=0.001))
        large = conventional_breakdown(paper_parameters(hep=0.01))
        assert large["du"] / small["du"] == pytest.approx(10.0, rel=0.05)

    def test_breakdown_sums_to_total(self, paper_params):
        breakdown = conventional_breakdown(paper_params)
        assert breakdown["du"] + breakdown["dl"] == pytest.approx(breakdown["total"], rel=1e-9)

    def test_raid1_uses_same_structure_with_two_disks(self):
        params = paper_parameters(geometry=RaidGeometry.raid1(2), hep=0.01)
        chain = build_conventional_chain(params)
        assert chain.rate("OP", "EXP") == pytest.approx(2 * params.disk_failure_rate)
        assert chain.rate("EXP", "DL") == pytest.approx(params.disk_failure_rate)

    def test_raid6_rejected(self):
        with pytest.raises(RaidConfigurationError):
            build_conventional_chain(paper_parameters(geometry=RaidGeometry.raid6(6)))

    def test_expected_magnitude_at_paper_point(self):
        # Hand-computed steady state at lambda=1e-6, hep=0.01 (see DESIGN.md):
        # unavailability is dominated by pi_DU ~ 4e-8 plus pi_DL ~ 1.7e-8.
        result = conventional_availability(paper_parameters(hep=0.01, disk_failure_rate=1e-6))
        assert result.unavailability == pytest.approx(5.7e-8, rel=0.1)


class TestFailoverModel:
    def test_fig3_states_present(self):
        chain = build_failover_chain(paper_parameters(hep=0.01))
        expected = {
            "OP", "EXP1", "OPns", "EXPns1", "EXPns2", "EXP2",
            "DUns1", "DUns2", "DU1", "DU2", "DL", "DLns",
        }
        assert set(chain.state_names) == expected
        validate_chain(chain)

    def test_up_down_partition(self):
        chain = build_failover_chain(paper_parameters(hep=0.01))
        assert set(chain.up_states()) == {"OP", "EXP1", "OPns", "EXPns1", "EXPns2", "EXP2"}
        assert set(chain.down_states()) == {"DUns1", "DUns2", "DU1", "DU2", "DL", "DLns"}

    def test_hep_zero_drops_human_error_states(self):
        chain = build_failover_chain(paper_parameters(hep=0.0))
        assert set(chain.state_names) == {"OP", "EXP1", "OPns", "EXPns1", "DL", "DLns"}
        validate_chain(chain)

    def test_no_human_error_possible_in_exp1(self):
        # Automatic fail-over forbids replacement during the on-line rebuild,
        # so EXP1 has no transition into any human-error state.
        chain = build_failover_chain(paper_parameters(hep=0.01))
        successors = set(chain.successors("EXP1"))
        assert successors == {"OPns", "DL"}

    def test_failover_beats_conventional_with_human_error(self):
        for hep in (0.001, 0.01):
            params = paper_parameters(hep=hep)
            conventional = conventional_availability(params)
            failover = failover_availability(params)
            assert failover.availability > conventional.availability

    def test_failover_advantage_grows_with_hep(self):
        def ratio(hep):
            params = paper_parameters(hep=hep)
            c = conventional_availability(params).unavailability
            f = failover_availability(params).unavailability
            return c / f

        assert ratio(0.01) > ratio(0.001) > 1.0

    def test_equivalent_to_conventional_at_hep_zero_within_spare_benefit(self):
        # With hep = 0 the fail-over model still benefits slightly from the
        # hot spare; it must never be worse than the conventional baseline.
        params = paper_parameters(hep=0.0)
        assert failover_availability(params).availability >= baseline_availability(params).availability - 1e-15

    def test_breakdown_sums_to_total(self):
        breakdown = failover_breakdown(paper_parameters(hep=0.01))
        assert breakdown["du"] + breakdown["dl"] == pytest.approx(breakdown["total"], rel=1e-9)

    def test_human_error_down_probability_much_smaller_than_conventional(self):
        params = paper_parameters(hep=0.01)
        conventional_du = conventional_breakdown(params)["du"]
        failover_du = failover_breakdown(params)["du"]
        assert failover_du < conventional_du / 50.0

    def test_raid6_rejected(self):
        with pytest.raises(RaidConfigurationError):
            build_failover_chain(paper_parameters(geometry=RaidGeometry.raid6(6)))


class TestRegistryDispatch:
    def test_build_chain_dispatch(self, paper_params):
        assert set(
            resolve_policy("baseline").build_chain(paper_params).state_names
        ) == {"OP", "EXP", "DL"}
        assert "DU" in resolve_policy("conventional").build_chain(paper_params).state_names
        assert "OPns" in resolve_policy("automatic_failover").build_chain(paper_params).state_names

    def test_analytical_result_matches_direct_calls(self, paper_params):
        assert analytical_result(paper_params, "conventional").availability == pytest.approx(
            conventional_availability(paper_params).availability
        )
        assert analytical_result(paper_params, "baseline").availability == pytest.approx(
            baseline_availability(paper_params.without_human_error()).availability
        )

    def test_baseline_dispatch_ignores_hep(self):
        with_hep = analytical_result(paper_parameters(hep=0.01), "baseline")
        without = analytical_result(paper_parameters(hep=0.0), "baseline")
        assert with_hep.availability == pytest.approx(without.availability)

    def test_unknown_policy_rejected(self, paper_params):
        with pytest.raises(ConfigurationError):
            analytical_result(paper_params, "not-a-policy")

    def test_analytical_policies_cover_paper_models_and_erasure(self):
        assert {
            "baseline",
            "conventional",
            "automatic_failover",
            "erasure",
        } <= set(analytical_policies())
