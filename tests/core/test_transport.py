"""Transport bit-identity, kernel-compaction equivalence and lifecycle tests.

The zero-copy execution plane must be invisible in the results: shared-
memory and pickle transports, any worker count, compacted and uncompacted
kernels all have to produce byte-identical ``MonteCarloResult``s, because
they feed the very same kernels the very same parameter rows and random
streams.  This suite pins those guarantees, plus the operational ones —
no leaked ``/dev/shm`` segments after failing sweeps, and the worker
initializer (BLAS pinning) actually running in every pool worker.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.montecarlo import (
    MonteCarloConfig,
    replay_stacked_point,
    run_stacked,
)
from repro.core.montecarlo.parallel import worker_pool, worker_probe
from repro.core.montecarlo.transport import (
    SharedGridPlanes,
    active_segments,
    attach_grid_slice,
    attach_segment,
    resolve_stacked_transport,
    shared_memory_available,
)
from repro.core.montecarlo.simulator import simulate_conventional
from repro.core.parameters import paper_parameters
from repro.core.policies.base import SimulationPolicy
from repro.core.policies.stacked import stack_parameter_points
from repro.core.policies.vectorized import batch_conventional, batch_spare_pool
from repro.exceptions import ConfigurationError, SimulationError
from repro.simulation.rng import RandomStreams
from repro.storage.raid import RaidGeometry

HORIZON = 87_600.0

#: Elevated rates so short runs still see failures, repairs and wrong pulls.
STRESS = dict(disk_failure_rate=1e-4, hep=0.02)

BATCH_FIELDS = ("downtime_hours", "du_events", "dl_events", "disk_failures", "human_errors")

pytestmark = pytest.mark.skipif(
    not shared_memory_available(), reason="POSIX shared memory is not usable here"
)


def _grid_configs(n_points, workers, transport, seed=11, iterations=300, shard_size=128):
    heps = np.linspace(0.0, 0.05, n_points)
    return [
        MonteCarloConfig(
            params=paper_parameters(disk_failure_rate=1e-4, hep=float(hep)),
            policy="conventional",
            n_iterations=iterations,
            horizon_hours=HORIZON,
            seed=seed,
            workers=workers,
            shard_size=shard_size,
            transport=transport,
        )
        for hep in heps
    ]


def _result_key(results):
    return [
        (
            r.availability,
            r.interval.half_width,
            r.interval.std_error,
            r.n_iterations,
            tuple(sorted(r.totals.items())),
        )
        for r in results
    ]


class TestTransportBitIdentity:
    """shm and pickle transports must be byte-identical, any worker count."""

    @pytest.mark.parametrize("n_points", [1, 4], ids=["scalar", "stacked"])
    @pytest.mark.parametrize("crn", [False, True], ids=["plain", "crn"])
    def test_shm_equals_pickle_across_worker_counts(self, n_points, crn):
        reference = _result_key(
            run_stacked(_grid_configs(n_points, 1, "pickle"), crn=crn)
        )
        for workers in (1, 2, 4):
            for transport in ("pickle", "shm", "auto"):
                results = run_stacked(
                    _grid_configs(n_points, workers, transport), crn=crn
                )
                assert _result_key(results) == reference, (workers, transport)

    def test_replay_matches_grid_run_on_every_transport(self):
        for transport in ("pickle", "shm"):
            configs = _grid_configs(3, 2, transport)
            grid = run_stacked(configs)
            for point in range(len(configs)):
                replayed = replay_stacked_point(configs, point)
                assert replayed.availability == grid[point].availability
                assert replayed.totals == grid[point].totals
                assert replayed.n_iterations == grid[point].n_iterations

    def test_unknown_transport_rejected(self):
        with pytest.raises(ConfigurationError):
            MonteCarloConfig(transport="carrier-pigeon")
        with pytest.raises(ConfigurationError):
            resolve_stacked_transport("carrier-pigeon", pooled=True)

    def test_mixed_transports_rejected_in_one_grid(self):
        configs = _grid_configs(2, 1, "shm")
        mixed = [configs[0], configs[1].with_transport("pickle")]
        with pytest.raises(ConfigurationError, match="transport"):
            run_stacked(mixed)


class TestSharedPlanes:
    """The segment layout and attach protocol round-trip exactly."""

    def test_attach_views_round_trip(self):
        points = [
            paper_parameters(geometry=RaidGeometry.from_label("RAID5(3+1)"), **STRESS),
            paper_parameters(geometry=RaidGeometry.from_label("RAID5(7+1)"), **STRESS),
        ]
        grid = stack_parameter_points(points, [5, 7], n_spares=[1, 3])
        with SharedGridPlanes(grid) as planes:
            segment = attach_segment(planes.spec.name)
            try:
                view = attach_grid_slice(planes.spec, segment.buf, 3, 9)
                expected = grid.slice(3, 9)
                assert np.array_equal(view.hep, expected.hep)
                assert np.array_equal(view.n_disks_rows, expected.n_disks_rows)
                assert np.array_equal(view.n_spares_rows, expected.n_spares_rows)
                assert np.array_equal(view.disk_failure_rate, expected.disk_failure_rate)
                # The planes are read-only on the worker side.
                with pytest.raises((ValueError, RuntimeError)):
                    view.hep[0] = 0.5
                del view
            finally:
                segment.close()

    def test_spec_rejects_bad_slices(self):
        grid = stack_parameter_points([paper_parameters(**STRESS)], [4])
        with SharedGridPlanes(grid) as planes:
            segment = attach_segment(planes.spec.name)
            try:
                with pytest.raises(ConfigurationError):
                    attach_grid_slice(planes.spec, segment.buf, 2, 9)
            finally:
                segment.close()


def _exploding_batch(params, horizon_hours, n_lifetimes, rng, **kwargs):
    """A stacked-capable kernel that always fails (worker-side)."""
    raise SimulationError("intentional kernel failure (transport lifecycle test)")


EXPLODING_POLICY = SimulationPolicy(
    name="exploding",
    description="raises inside the worker to exercise cleanup paths",
    scalar=simulate_conventional,
    batch=_exploding_batch,
    supports_stacked=True,
)


class TestShmLifecycle:
    """Segments are unlinked on every exit path, including worker failures."""

    def test_no_segments_leak_after_successful_sweep(self):
        before = active_segments()
        run_stacked(_grid_configs(3, 2, "shm"))
        assert active_segments() == before

    @pytest.mark.parametrize("workers", [1, 2], ids=["in-process", "pooled"])
    def test_no_segments_leak_after_failing_sweep(self, workers):
        before = active_segments()
        heps = (0.0, 0.01)
        configs = [
            MonteCarloConfig(
                params=paper_parameters(disk_failure_rate=1e-4, hep=hep),
                policy=EXPLODING_POLICY,
                n_iterations=200,
                horizon_hours=HORIZON,
                seed=3,
                workers=workers,
                shard_size=64,
                transport="shm",
            )
            for hep in heps
        ]
        with pytest.raises(SimulationError, match="intentional kernel failure"):
            run_stacked(configs)
        assert active_segments() == before

    def test_planes_dispose_is_idempotent(self):
        grid = stack_parameter_points([paper_parameters(**STRESS)], [4])
        planes = SharedGridPlanes(grid)
        name = planes.spec.name
        assert name in active_segments()
        planes.dispose()
        planes.dispose()
        assert name not in active_segments()


class TestWorkerInitializer:
    """The BLAS-pinning initializer runs in every pool worker."""

    def test_initializer_ran_in_each_worker(self):
        with worker_pool(2) as pool:
            assert pool is not None
            probes = [pool.submit(worker_probe) for _ in range(16)]
            seen = {}
            for probe in probes:
                pid, initialised = probe.result()
                seen[pid] = initialised
        assert seen, "no worker answered the probe"
        assert all(seen.values()), f"initializer missing in workers: {seen}"


class TestCompactionEquivalence:
    """compact=True and compact=False are the same random experiment."""

    def _assert_equivalent(self, kernel, params, n, **kwargs):
        rng_ref = RandomStreams(2017).stream("montecarlo")
        reference = kernel(params, HORIZON, n, rng_ref, compact=False, **kwargs)
        rng_new = RandomStreams(2017).stream("montecarlo")
        compacted = kernel(params, HORIZON, n, rng_new, compact=True, **kwargs)
        for field in BATCH_FIELDS:
            assert np.array_equal(
                getattr(reference, field), getattr(compacted, field)
            ), field
        # Stronger than equal outputs: the generators must end in the same
        # state, i.e. both paths drew the same numbers in the same order.
        assert rng_ref.bit_generator.state == rng_new.bit_generator.state

    @pytest.mark.parametrize(
        "kernel,kwargs",
        [
            (batch_conventional, {}),
            (batch_spare_pool, {"n_spares": 1}),
            (batch_spare_pool, {"n_spares": 3}),
        ],
        ids=["conventional", "failover", "pool3"],
    )
    def test_scalar_params(self, kernel, kwargs):
        params = paper_parameters(**STRESS)
        self._assert_equivalent(kernel, params, 1500, **kwargs)

    @pytest.mark.parametrize(
        "kernel,kwargs",
        [(batch_conventional, {}), (batch_spare_pool, {"n_spares": 2})],
        ids=["conventional", "pool"],
    )
    def test_stacked_grid(self, kernel, kwargs):
        points = [
            paper_parameters(disk_failure_rate=rate, hep=hep)
            for rate, hep in ((1e-4, 0.0), (5e-5, 0.02), (1e-5, 0.05))
        ]
        grid = stack_parameter_points(points, [500, 600, 400])
        self._assert_equivalent(kernel, grid, len(grid), **kwargs)

    def test_mixed_geometry_grid_with_per_row_pools(self):
        points = [
            paper_parameters(geometry=RaidGeometry.from_label("RAID5(3+1)"), **STRESS),
            paper_parameters(geometry=RaidGeometry.from_label("RAID5(7+1)"), **STRESS),
        ]
        grid = stack_parameter_points(points, [700, 500], n_spares=[1, 3])
        self._assert_equivalent(batch_spare_pool, grid, len(grid))
        self._assert_equivalent(batch_conventional, grid, len(grid))

    def test_weibull_failure_clocks(self):
        points = [
            paper_parameters(disk_failure_rate=1e-4, hep=0.01, failure_shape=1.3),
            paper_parameters(disk_failure_rate=5e-5, hep=0.02, failure_shape=1.3),
        ]
        grid = stack_parameter_points(points, [400, 300])
        self._assert_equivalent(batch_conventional, grid, len(grid))
