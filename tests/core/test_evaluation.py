"""Unit tests for the backend-agnostic evaluation API."""

from __future__ import annotations

import pytest

from repro.core.evaluation import (
    AvailabilityEstimate,
    analytical_policies,
    analytical_result,
    chain_template,
    clear_template_cache,
    evaluate,
)
from repro.core.parameters import paper_parameters
from repro.core.policies import get_policy, hot_spare_policy
from repro.exceptions import ConfigurationError
from repro.human.policy import PolicyKind
from repro.markov.metrics import steady_state_availability

FAST_PARAMS = paper_parameters(disk_failure_rate=1e-4, hep=0.05)


def _legacy_solve(params, policy_name):
    """Pre-refactor reference: build the chain fresh and solve dense."""
    return steady_state_availability(
        get_policy(policy_name).build_chain(params), method="dense"
    )


class TestAnalyticalBackend:
    @pytest.mark.parametrize("policy", ["baseline", "conventional", "automatic_failover"])
    @pytest.mark.parametrize("hep", [0.0, 0.001, 0.01])
    @pytest.mark.parametrize("rate", [1e-7, 1e-6, 1e-5])
    def test_matches_per_point_rebuild(self, policy, hep, rate):
        params = paper_parameters(disk_failure_rate=rate, hep=hep)
        legacy = _legacy_solve(params, policy)
        estimate = evaluate(params, policy=policy, backend="analytical")
        assert estimate.availability == pytest.approx(legacy.availability, abs=1e-12)
        assert estimate.nines == pytest.approx(legacy.nines, abs=1e-9)
        assert estimate.backend == "analytical"
        assert estimate.ci_lower is None and not estimate.has_interval

    def test_provenance_names_solver_and_states(self):
        estimate = evaluate(paper_parameters(hep=0.01), "automatic_failover", "analytical")
        assert estimate.provenance == "solver=dense states=12"

    def test_state_probabilities_attached(self):
        estimate = evaluate(paper_parameters(hep=0.01), "conventional", "analytical")
        assert set(estimate.state_probabilities) == {"OP", "EXP", "DU", "DL"}
        assert sum(estimate.state_probabilities.values()) == pytest.approx(1.0)

    def test_analytical_result_full_summary(self):
        params = paper_parameters(hep=0.01)
        result = analytical_result(params, "conventional")
        legacy = _legacy_solve(params, "conventional")
        assert result.availability == legacy.availability
        assert result.state_probabilities == legacy.state_probabilities
        assert result.up_states == legacy.up_states

    def test_policykind_accepted_as_policy(self):
        params = paper_parameters(hep=0.01)
        by_name = evaluate(params, "conventional", "analytical")
        by_policy_kind = evaluate(params, PolicyKind.CONVENTIONAL, "analytical")
        assert by_policy_kind.availability == by_name.availability

    def test_chainless_policy_rejected(self):
        with pytest.raises(ConfigurationError):
            evaluate(FAST_PARAMS, hot_spare_policy(3), backend="analytical")

    def test_contains_requires_interval(self):
        estimate = evaluate(paper_parameters(hep=0.01), "conventional", "analytical")
        with pytest.raises(ConfigurationError):
            estimate.contains(0.5)

    def test_template_cache_shared_across_calls(self):
        clear_template_cache()
        params = paper_parameters(hep=0.01)
        first = chain_template("conventional", params)
        second = chain_template("conventional", params.with_hep(0.25))
        assert first is second
        # hep = 0 selects the structurally reduced template.
        reduced = chain_template("conventional", params.with_hep(0.0))
        assert reduced is not first
        assert "DU" not in reduced.state_names

    def test_analytical_policies_lists_dual_face_policies(self):
        names = analytical_policies()
        assert {"baseline", "conventional", "automatic_failover"} <= set(names)
        assert "hot_spare_pool" not in names


class TestTemplateCacheBound:
    """The process-wide template cache is LRU-bounded and observable."""

    def teardown_method(self):
        from repro.core.evaluation import (
            DEFAULT_TEMPLATE_CACHE_SIZE,
            set_template_cache_size,
        )

        set_template_cache_size(DEFAULT_TEMPLATE_CACHE_SIZE)
        clear_template_cache()

    def test_stats_track_hits_and_misses(self):
        from repro.core.evaluation import template_cache_stats

        clear_template_cache()
        params = paper_parameters(hep=0.01)
        chain_template("conventional", params)
        chain_template("conventional", params.with_hep(0.25))
        stats = template_cache_stats()
        assert stats["size"] == 1
        assert stats["misses"] == 1
        assert stats["hits"] == 1
        assert stats["maxsize"] >= 1

    def test_lru_evicts_least_recently_used_geometry(self):
        from repro.core.evaluation import set_template_cache_size, template_cache_stats
        from repro.storage.raid import RaidGeometry

        clear_template_cache()
        set_template_cache_size(2)
        small = paper_parameters(geometry=RaidGeometry.raid5(3), hep=0.01)
        wide = paper_parameters(geometry=RaidGeometry.raid5(7), hep=0.01)
        mirror = paper_parameters(geometry=RaidGeometry.raid1(), hep=0.01)
        first = chain_template("conventional", small)
        chain_template("conventional", wide)
        chain_template("conventional", small)  # refresh: small is now MRU
        chain_template("conventional", mirror)  # evicts wide, not small
        assert template_cache_stats()["evictions"] == 1
        assert chain_template("conventional", small) is first
        # wide was evicted: asking again rebuilds (a fresh object).
        stats_before = template_cache_stats()["misses"]
        chain_template("conventional", wide)
        assert template_cache_stats()["misses"] == stats_before + 1

    def test_shrinking_the_bound_evicts_immediately(self):
        from repro.core.evaluation import set_template_cache_size, template_cache_stats
        from repro.storage.raid import RaidGeometry

        clear_template_cache()
        for data_disks in (2, 3, 4):
            chain_template(
                "conventional",
                paper_parameters(geometry=RaidGeometry.raid5(data_disks), hep=0.01),
            )
        assert template_cache_stats()["size"] == 3
        set_template_cache_size(1)
        assert template_cache_stats()["size"] == 1
        with pytest.raises(ConfigurationError):
            set_template_cache_size(0)

    def test_clear_resets_counters(self):
        from repro.core.evaluation import template_cache_stats

        chain_template("conventional", paper_parameters(hep=0.01))
        clear_template_cache()
        stats = template_cache_stats()
        assert stats["size"] == 0
        assert stats["hits"] == stats["misses"] == stats["evictions"] == 0


class TestMonteCarloBackend:
    def test_interval_and_provenance(self):
        estimate = evaluate(
            FAST_PARAMS, "conventional", backend="monte_carlo",
            n_iterations=800, seed=3,
        )
        assert estimate.backend == "monte_carlo"
        from repro.core.montecarlo import resolve_kernel

        assert estimate.provenance == f"executor=batch kernel={resolve_kernel('auto')}"
        assert estimate.has_interval
        assert estimate.ci_lower <= estimate.availability <= estimate.ci_upper
        assert estimate.contains(estimate.availability)
        assert estimate.n_iterations == 800
        assert estimate.half_width > 0.0

    def test_sharded_provenance(self):
        estimate = evaluate(
            FAST_PARAMS, "conventional", backend="monte_carlo",
            n_iterations=600, seed=3, shard_size=200,
        )
        assert estimate.provenance.startswith("executor=sharded")

    def test_auto_prefers_analytical_when_available(self):
        assert evaluate(FAST_PARAMS, "conventional", "auto").backend == "analytical"

    def test_auto_falls_back_to_monte_carlo(self):
        estimate = evaluate(
            FAST_PARAMS, hot_spare_policy(2), backend="auto",
            n_iterations=400, seed=5,
        )
        assert estimate.backend == "monte_carlo"
        assert estimate.has_interval

    def test_unknown_backend_rejected(self):
        with pytest.raises(ConfigurationError):
            evaluate(FAST_PARAMS, "conventional", backend="quantum")

    def test_as_dict_round_trip(self):
        estimate = evaluate(
            FAST_PARAMS, "conventional", backend="monte_carlo",
            n_iterations=400, seed=5,
        )
        payload = estimate.as_dict()
        assert payload["backend"] == "monte_carlo"
        assert {"ci_lower", "ci_upper", "confidence", "n_iterations"} <= set(payload)
        analytical = evaluate(FAST_PARAMS, "conventional", "analytical").as_dict()
        assert "ci_lower" not in analytical


class TestCrossBackendConsistency:
    """Satellite: analytical availability within the sharded-MC 99% half-width."""

    @pytest.mark.parametrize("policy", ["baseline", "conventional", "automatic_failover"])
    def test_analytical_within_sharded_mc_interval(self, policy):
        analytical = evaluate(FAST_PARAMS, policy, backend="analytical")
        mc = evaluate(
            FAST_PARAMS, policy, backend="monte_carlo",
            n_iterations=6000, seed=0, confidence=0.99, shard_size=1500,
        )
        assert mc.provenance.startswith("executor=sharded")
        assert abs(mc.availability - analytical.availability) <= mc.half_width, (
            f"{policy}: analytical {analytical.availability} outside "
            f"[{mc.ci_lower}, {mc.ci_upper}]"
        )


class TestModelKindRetired:
    def test_shim_module_is_gone(self):
        with pytest.raises(ModuleNotFoundError):
            import repro.core.models.generic  # noqa: F401

    def test_shim_names_not_exported(self):
        import repro
        import repro.core
        import repro.core.models

        for module in (repro, repro.core, repro.core.models):
            for name in ("ModelKind", "solve_model", "build_chain", "ModelDescriptor"):
                assert not hasattr(module, name), f"{module.__name__}.{name}"

    def test_registry_route_replaces_solve_model(self):
        params = paper_parameters(hep=0.01)
        assert analytical_result(params, "conventional").availability == (
            _legacy_solve(params, "conventional").availability
        )
