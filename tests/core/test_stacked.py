"""Tests for the stacked-grid Monte Carlo engine.

Covers the per-lifetime parameter grids (``StackedParams``), the flattened
``point x lifetime`` shard planning, statistical equivalence between the
stacked engine and the retained per-point path for every registered policy,
bit-identical worker-count independence, per-point replay, and the
variance-reduction guarantee of the common-random-numbers mode.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.montecarlo import (
    DEFAULT_STACKED_SHARD_SIZE,
    MonteCarloConfig,
    plan_stacked_shards,
    replay_stacked_point,
    run_monte_carlo,
    run_stacked,
)
from repro.core.parameters import paper_parameters
from repro.core.policies import (
    StackedParams,
    available_policies,
    batch_spare_pool,
    get_policy,
    stack_parameter_points,
)
from repro.core.policies.base import SimulationPolicy
from repro.core.sweep import sweep, sweep_per_point_mc
from repro.exceptions import ConfigurationError, SimulationError
from repro.simulation.confidence import StreamingMoments, segmented_moments
from repro.storage.raid import RaidGeometry

#: Exaggerated stress point where estimates separate quickly.
STRESS = dict(disk_failure_rate=1e-4, hep=0.05)
HORIZON = 50_000.0


def _configs(heps, policy="conventional", n=1200, seed=13, **overrides):
    return [
        MonteCarloConfig(
            params=paper_parameters(disk_failure_rate=STRESS["disk_failure_rate"], hep=hep),
            policy=policy,
            n_iterations=n,
            horizon_hours=HORIZON,
            seed=seed,
            **overrides,
        )
        for hep in heps
    ]


def _intervals_overlap(a, b) -> bool:
    return max(a.interval.lower, b.interval.lower) <= min(
        a.interval.upper, b.interval.upper
    )


class TestStackedParams:
    def test_stacking_expands_points_by_count(self):
        points = [paper_parameters(hep=0.0), paper_parameters(hep=0.5)]
        grid = stack_parameter_points(points, [3, 2])
        assert len(grid) == 5
        assert list(grid.hep) == [0.0, 0.0, 0.0, 0.5, 0.5]
        assert grid.n_disks == 4

    def test_slice_is_a_contiguous_view_of_the_grid(self):
        grid = stack_parameter_points(
            [paper_parameters(hep=0.1), paper_parameters(hep=0.9)], [2, 2]
        )
        part = grid.slice(1, 3)
        assert len(part) == 2
        assert list(part.hep) == [0.1, 0.9]
        with pytest.raises(ConfigurationError):
            grid.slice(3, 3)
        with pytest.raises(ConfigurationError):
            grid.slice(0, 9)

    def test_without_human_error_zeroes_every_row(self):
        grid = stack_parameter_points([paper_parameters(hep=0.3)], [4])
        assert np.all(grid.without_human_error().hep == 0.0)
        assert np.all(grid.hep == 0.3)  # original untouched

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            stack_parameter_points([], [])
        with pytest.raises(ConfigurationError):
            stack_parameter_points([paper_parameters()], [1, 2])
        with pytest.raises(ConfigurationError):
            stack_parameter_points([paper_parameters()], [0])
        with pytest.raises(ConfigurationError):
            stack_parameter_points([paper_parameters()], [2], n_spares=[1, 2])

    def test_mixed_geometry_grid_masks_missing_slots(self):
        points = [
            paper_parameters(geometry=RaidGeometry.raid5(3)),  # 4 disks
            paper_parameters(geometry=RaidGeometry.raid1()),   # 2 disks
        ]
        grid = stack_parameter_points(points, [1, 1])
        assert grid.n_disks == 4
        assert list(grid.n_disks_rows) == [4, 2]

    def test_row_distributions_sample_at_row_rates(self):
        grid = stack_parameter_points(
            [
                paper_parameters(disk_failure_rate=1.0),
                paper_parameters(disk_failure_rate=1e-6),
            ],
            [1, 1],
        )
        dist = grid.failure_distribution()
        rng = np.random.default_rng(0)
        fast = dist.sample_rows(np.zeros(2000, dtype=np.int64), rng)
        slow = dist.sample_rows(np.ones(2000, dtype=np.int64), rng)
        assert fast.mean() == pytest.approx(1.0, rel=0.2)
        assert slow.mean() == pytest.approx(1e6, rel=0.2)
        matrix = dist.sample_matrix(3, np.random.default_rng(1))
        assert matrix.shape == (2, 3)
        assert matrix[1].min() > matrix[0].max()  # rate 1e-6 rows are huge


class TestSegmentedMoments:
    def test_matches_per_segment_from_samples(self):
        rng = np.random.default_rng(5)
        data = rng.random(100)
        counts = [10, 50, 40]
        segmented = segmented_moments(data, counts)
        offset = 0
        for count, moments in zip(counts, segmented):
            reference = StreamingMoments.from_samples(data[offset : offset + count])
            assert moments.n == reference.n
            assert moments.mean == pytest.approx(reference.mean, abs=1e-15)
            assert moments.m2 == pytest.approx(reference.m2, abs=1e-12)
            offset += count

    def test_validation(self):
        with pytest.raises(SimulationError):
            segmented_moments([1.0, 2.0], [1, 2])
        with pytest.raises(SimulationError):
            segmented_moments([1.0], [0, 1])
        with pytest.raises(SimulationError):
            segmented_moments([], [])


class TestStackedShardPlanning:
    def test_flat_shards_tile_the_whole_axis(self):
        shards = plan_stacked_shards([5, 7, 4], 6)
        assert [(s.start, s.stop) for s in shards] == [(0, 6), (6, 12), (12, 16)]
        assert [s.stream_index for s in shards] == [0, 1, 2]
        # Segment counts per shard line up with the point boundaries 5/12/16.
        assert shards[0].point_indices == (0, 1) and shards[0].counts == (5, 1)
        assert shards[1].point_indices == (1,) and shards[1].counts == (6,)
        assert shards[2].point_indices == (2,) and shards[2].counts == (4,)

    def test_crn_shards_never_cross_point_boundaries(self):
        shards = plan_stacked_shards([5, 7], 4, crn=True)
        assert [(s.start, s.stop, s.stream_index) for s in shards] == [
            (0, 4, 0), (4, 5, 1), (5, 9, 0), (9, 12, 1),
        ]
        for shard in shards:
            assert len(shard.point_indices) == 1

    def test_validation(self):
        with pytest.raises(SimulationError):
            plan_stacked_shards([], 4)
        with pytest.raises(SimulationError):
            plan_stacked_shards([0], 4)
        with pytest.raises(SimulationError):
            plan_stacked_shards([4], 0)


class TestStackedValidation:
    def test_configs_must_share_study_shape(self):
        base = _configs([0.01, 0.02])
        mismatched = [base[0], MonteCarloConfig(
            params=base[1].params, policy="conventional", n_iterations=1200,
            horizon_hours=HORIZON + 1.0, seed=13,
        )]
        with pytest.raises(ConfigurationError, match="horizon_hours"):
            run_stacked(mismatched)

    def test_adaptive_stopping_runs_through_allocator(self):
        # Formerly a hard error; adaptive stacked runs now dispatch extra
        # rounds through the CI-width allocator until every point's merged
        # interval meets the target (or its ceiling).
        results = run_stacked(
            _configs([0.01], target_half_width=1e-3, max_iterations=20_000)
        )
        assert results[0].interval.half_width <= 1e-3

    def test_adaptive_stopping_rejected_with_crn(self):
        with pytest.raises(ConfigurationError, match="common-random-numbers"):
            run_stacked(
                _configs([0.01], target_half_width=1e-4, max_iterations=20_000),
                crn=True,
            )

    def test_scalar_executor_rejected(self):
        with pytest.raises(ConfigurationError, match="vectorised"):
            run_stacked(_configs([0.01], executor="scalar"))

    def test_policy_without_stacked_kernel_rejected(self):
        conventional = get_policy("conventional")
        unstacked = SimulationPolicy(
            name="unstacked_test_policy",
            description="batch kernel without stacked support",
            scalar=conventional.scalar,
            batch=conventional.batch,
        )
        assert not unstacked.can_stack
        with pytest.raises(ConfigurationError, match="stacked-capable"):
            run_stacked(_configs([0.01], policy=unstacked))

    def test_sweep_stacked_engine_rejects_unstackable_config(self):
        with pytest.raises(ConfigurationError, match="stacked engine"):
            sweep(
                paper_parameters(**STRESS), "hep", [0.01, 0.02],
                backend="monte_carlo", mc_engine="stacked",
                executor="scalar", mc_iterations=400,
            )

    def test_sweep_per_point_engine_rejects_crn(self):
        with pytest.raises(ConfigurationError, match="common random numbers"):
            sweep(
                paper_parameters(**STRESS), "hep", [0.01, 0.02],
                backend="monte_carlo", mc_engine="per_point", crn=True,
                mc_iterations=400,
            )

    def test_crn_never_dropped_silently_on_auto_fallback(self):
        # An explicit CRN request must never be quietly dropped: adaptive
        # auto-engine sweeps now run stacked, where CRN conflicts with the
        # re-planned allocator rounds (hyphenated message from the stacked
        # validator); per-point fallbacks keep the sweep-level refusal.
        with pytest.raises(ConfigurationError, match="common.random.numbers"):
            sweep(
                paper_parameters(**STRESS), "hep", [0.01, 0.02],
                backend="monte_carlo", crn=True, target_half_width=1e-3,
                mc_iterations=400,
            )
        from repro.core.evaluation import evaluate_stacked

        conventional = get_policy("conventional")
        unstacked = SimulationPolicy(
            name="unstacked_crn_policy",
            description="no stacked kernel",
            scalar=conventional.scalar,
            batch=conventional.batch,
        )
        with pytest.raises(ConfigurationError, match="common random numbers"):
            evaluate_stacked(
                [paper_parameters(**STRESS)], unstacked,
                n_iterations=400, horizon_hours=HORIZON, crn=True,
            )

    def test_mc_options_rejected_on_analytical_resolution(self):
        # backend="auto" resolves analytically for dual-face policies; an
        # explicit CRN or engine request must error instead of being
        # dropped (the user would get uncoupled point estimates silently).
        base = paper_parameters(**STRESS)
        with pytest.raises(ConfigurationError, match="analytical backend"):
            sweep(base, "hep", [0.001, 0.01], crn=True)
        with pytest.raises(ConfigurationError, match="analytical backend"):
            sweep(base, "hep", [0.001, 0.01], mc_engine="stacked")
        from repro.core.sweep import sweep_grid

        with pytest.raises(ConfigurationError, match="analytical backend"):
            sweep_grid(
                base, "hep", [0.001], "failure_rate", [1e-5],
                backend="analytical", crn=True,
            )

    def test_grid_axis_aliases_rejected(self):
        # failure_rate and disk_failure_rate sweep the same field; a grid
        # over both would silently degenerate (axis2 overwrites axis1).
        from repro.core.sweep import sweep_grid

        with pytest.raises(ConfigurationError, match="different parameters"):
            sweep_grid(
                paper_parameters(**STRESS),
                "failure_rate", [1e-6, 1e-5],
                "disk_failure_rate", [1e-4],
                backend="analytical",
            )


class TestStatisticalEquivalence:
    @pytest.mark.parametrize("policy", sorted(available_policies()))
    def test_stacked_agrees_with_per_point_for_every_policy(self, policy):
        # The stacked engine must agree with one independent study per
        # point, within merged 99 % intervals, for every registered policy.
        configs = _configs([0.0, 0.02, 0.05], policy=policy, n=1500)
        stacked = run_stacked(configs)
        for config, point in zip(configs, stacked):
            reference = run_monte_carlo(config)
            assert point.n_iterations == reference.n_iterations == 1500
            assert _intervals_overlap(point, reference), (
                f"{policy}: stacked {point.availability} vs "
                f"per-point {reference.availability}"
            )

    def test_mixed_geometry_grid_agrees_with_per_point(self):
        geometries = [RaidGeometry.raid1(), RaidGeometry.raid5(3), RaidGeometry.raid5(7)]
        configs = [
            MonteCarloConfig(
                params=paper_parameters(geometry=geometry, **STRESS),
                policy="conventional",
                n_iterations=1500,
                horizon_hours=HORIZON,
                seed=17,
            )
            for geometry in geometries
        ]
        stacked = run_stacked(configs)
        for config, point in zip(configs, stacked):
            assert _intervals_overlap(point, run_monte_carlo(config))

    def test_per_row_spare_pools_agree_with_fixed_pools(self):
        # The spare-pool kernel accepts a per-row pool size; each segment
        # must agree with a fixed-pool invocation of the same scenario.
        params = paper_parameters(**STRESS)
        grid = stack_parameter_points([params, params], [2000, 2000], n_spares=[1, 3])
        batch = batch_spare_pool(grid, HORIZON, 4000, np.random.default_rng(3))
        for segment, pool_size in ((slice(0, 2000), 1), (slice(2000, 4000), 3)):
            fixed = batch_spare_pool(
                params, HORIZON, 2000, np.random.default_rng(4), n_spares=pool_size
            )
            got = float(batch.availabilities()[segment].mean())
            want = float(fixed.availabilities().mean())
            assert got == pytest.approx(want, abs=4e-4)

    def test_sweep_routes_monte_carlo_through_stacked_engine(self):
        # Identical sweeps through the public API: the stacked default and
        # the retained per-point path agree within merged CIs per point.
        base = paper_parameters(**STRESS)
        stacked = sweep(
            base, "hep", [0.0, 0.05], backend="monte_carlo",
            mc_iterations=1500, mc_horizon_hours=HORIZON, seed=29,
        )
        per_point = sweep_per_point_mc(
            base, "hep", [0.0, 0.05],
            mc_iterations=1500, mc_horizon_hours=HORIZON, seed=29,
        )
        for a, b in zip(stacked, per_point):
            assert a.has_interval and b.has_interval
            assert max(a.ci_lower, b.ci_lower) <= min(a.ci_upper, b.ci_upper)


class TestStackedDeterminism:
    def test_deterministic_given_seed(self):
        configs = _configs([0.01, 0.04], n=900)
        first = run_stacked(configs)
        second = run_stacked(configs)
        for a, b in zip(first, second):
            assert a.availability == b.availability
            assert a.totals == b.totals
            assert a.seed_entropy == 13

    def test_worker_count_does_not_change_results(self):
        # The stacked decomposition never depends on the worker count, so
        # workers=2 is bit-identical to workers=1 even without a pinned
        # shard size.
        serial = run_stacked(_configs([0.01, 0.04], n=900, workers=1))
        parallel = run_stacked(_configs([0.01, 0.04], n=900, workers=2))
        for a, b in zip(serial, parallel):
            assert a.availability == b.availability
            assert a.interval.half_width == b.interval.half_width
            assert a.totals == b.totals

    def test_shards_span_points_by_default(self):
        # With 900-lifetime points and the default shard size, one shard
        # covers both points — the whole grid is one kernel invocation.
        assert 2 * 900 < DEFAULT_STACKED_SHARD_SIZE
        shards = plan_stacked_shards([900, 900], DEFAULT_STACKED_SHARD_SIZE)
        assert len(shards) == 1 and shards[0].point_indices == (0, 1)

    @pytest.mark.parametrize("crn", [False, True])
    def test_replay_point_is_bit_identical_to_grid_entry(self, crn):
        configs = _configs([0.0, 0.02, 0.05], n=700, shard_size=256)
        grid = run_stacked(configs, crn=crn)
        for index in (0, 2):
            replayed = replay_stacked_point(configs, index, crn=crn)
            assert replayed.availability == grid[index].availability
            assert replayed.interval.half_width == grid[index].interval.half_width
            assert replayed.totals == grid[index].totals

    def test_crn_points_do_not_depend_on_grid_membership(self):
        # CRN shards never cross point boundaries and restart their stream
        # indices per point, so a point's result is the same whether it is
        # evaluated alone or inside any grid.
        configs = _configs([0.01, 0.04], n=800)
        paired = run_stacked(configs, crn=True)
        alone = run_stacked(configs[1:], crn=True)
        assert paired[1].availability == alone[0].availability
        assert paired[1].totals == alone[0].totals


class TestCommonRandomNumbers:
    def test_crn_reduces_contrast_variance_on_two_point_hep_sweep(self):
        # The acceptance property of CRN mode: across independent
        # replications, the variance of the availability *contrast* between
        # two hep points must shrink when both points share base streams.
        # Paper-like rates keep most lifetimes inside the coupled prefix of
        # the shared streams (the contrast is then driven by the same
        # uniforms falling between the two hep thresholds), where the
        # coupling is strongest.
        seeds = range(100, 140)
        contrasts = {True: [], False: []}
        for crn in (True, False):
            for seed in seeds:
                configs = [
                    MonteCarloConfig(
                        params=paper_parameters(disk_failure_rate=1e-5, hep=hep),
                        policy="conventional",
                        n_iterations=2000,
                        horizon_hours=87_600.0,
                        seed=seed,
                    )
                    for hep in (0.001, 0.01)
                ]
                low, high = run_stacked(configs, crn=crn)
                contrasts[crn].append(low.availability - high.availability)
        var_crn = float(np.var(contrasts[True], ddof=1))
        var_independent = float(np.var(contrasts[False], ddof=1))
        assert var_crn < var_independent, (
            f"CRN did not reduce contrast variance: {var_crn} vs {var_independent}"
        )
        # The reduction should be substantial, not a coin flip (measured
        # ratio ~0.6 across parameterisations; draws are seed-pinned).
        assert var_crn < 0.85 * var_independent

    def test_crn_couples_identical_points_exactly(self):
        # Two grid points with identical parameters consume identical
        # streams under CRN, so their estimates coincide bit for bit.
        configs = _configs([0.03, 0.03], n=600)
        first, second = run_stacked(configs, crn=True)
        assert first.availability == second.availability
        assert first.totals == second.totals
