"""Tests for the sharded parallel Monte Carlo executor.

Covers shard planning, the streaming merge, multi-process execution,
CI-driven adaptive stopping, seed-entropy replay, and the
statistical-consistency guarantees across all executors.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.montecarlo import (
    MonteCarloConfig,
    effective_shard_size,
    merge_totals,
    plan_shards,
    run_batch_lifetimes,
    run_monte_carlo,
    run_shard,
    run_sharded,
    summarise_batch,
)
from repro.core.parameters import paper_parameters
from repro.core.policies import get_policy
from repro.core.policies.base import BatchLifetimes
from repro.exceptions import ConfigurationError, SimulationError
from repro.simulation.confidence import StreamingMoments
from repro.simulation.rng import RandomStreams

#: Exaggerated stress point where estimates separate quickly (as used by
#: the existing runner tests): events are frequent enough that a few
#: thousand lifetimes give a resolvable interval.
STRESS = dict(disk_failure_rate=1e-4, hep=0.05)
HORIZON = 50_000.0


def _config(**overrides) -> MonteCarloConfig:
    defaults = dict(
        params=paper_parameters(**STRESS),
        n_iterations=2000,
        horizon_hours=HORIZON,
        seed=13,
    )
    defaults.update(overrides)
    return MonteCarloConfig(**defaults)


class TestShardPlanning:
    def test_plan_exact_division(self):
        assert plan_shards(10_000, 2500) == [2500] * 4

    def test_plan_with_remainder(self):
        assert plan_shards(10_001, 2500) == [2500] * 4 + [1]

    def test_plan_single_shard(self):
        assert plan_shards(5, 100) == [5]

    def test_plan_validation(self):
        with pytest.raises(SimulationError):
            plan_shards(0, 100)
        with pytest.raises(SimulationError):
            plan_shards(100, 0)

    def test_effective_shard_size_derives_from_workers(self):
        assert effective_shard_size(_config(workers=4)) == 500
        assert effective_shard_size(_config(workers=3)) == 667

    def test_effective_shard_size_explicit_override(self):
        assert effective_shard_size(_config(workers=4, shard_size=100)) == 100

    def test_effective_shard_size_capped_when_derived(self):
        # A huge adaptive round must not become one huge shard: the derived
        # size is capped so kernel working sets stay bounded, while an
        # explicit shard_size is taken literally.
        big = _config(n_iterations=1_000_000, workers=1)
        assert effective_shard_size(big) == 50_000
        assert effective_shard_size(_config(workers=1), budget=1_000_000) == 50_000
        pinned = _config(n_iterations=1_000_000, workers=1, shard_size=200_000)
        assert effective_shard_size(pinned) == 200_000


class TestConfigValidation:
    def test_workers_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            _config(workers=0)

    def test_shard_size_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            _config(shard_size=0)

    def test_target_half_width_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            _config(target_half_width=0.0)

    def test_max_iterations_not_below_n_iterations(self):
        with pytest.raises(ConfigurationError):
            _config(n_iterations=1000, target_half_width=1e-5, max_iterations=500)

    def test_max_iterations_unchecked_without_target(self):
        # The field is documented as ignored without target_half_width, so
        # it must not be validated against n_iterations either.
        config = _config(n_iterations=1000, max_iterations=500)
        assert config.max_iterations == 500

    def test_with_target_half_width_preserves_pinned_ceiling(self):
        pinned = _config(n_iterations=500, target_half_width=1e-4, max_iterations=50_000)
        assert pinned.with_target_half_width(1e-6).max_iterations == 50_000
        assert pinned.with_target_half_width(1e-6, max_iterations=None).max_iterations is None
        assert pinned.with_target_half_width(1e-6, max_iterations=9000).max_iterations == 9000

    def test_with_workers_preserves_pinned_shard_size(self):
        pinned = _config().with_workers(1, shard_size=500)
        assert pinned.with_workers(4).shard_size == 500
        assert pinned.with_workers(4, shard_size=None).shard_size is None
        assert pinned.with_workers(4, shard_size=250).shard_size == 250

    def test_trace_collection_incompatible_with_sharding(self):
        with pytest.raises(ConfigurationError):
            _config(collect_trace=True, workers=2)
        with pytest.raises(ConfigurationError):
            _config(collect_trace=True, target_half_width=1e-4)

    def test_error_parity_between_executors(self):
        # Both the scalar and the batch path must reject a too-small run
        # with the same ConfigurationError, up front.
        with pytest.raises(ConfigurationError, match="at least two iterations"):
            _config(n_iterations=1)
        with pytest.raises(ConfigurationError, match="at least two iterations"):
            _config().with_iterations(1)
        batch = BatchLifetimes.zeros(1, HORIZON)
        with pytest.raises(ConfigurationError, match="at least two iterations"):
            summarise_batch(batch, _config())


class TestShardedDeterminism:
    def test_worker_count_does_not_change_results(self):
        # The decomposition depends only on shard_size, so a 1-worker and a
        # 3-worker run over the same shards are bit-identical.
        base = _config(n_iterations=1200)
        serial = run_monte_carlo(base.with_workers(1, shard_size=300))
        parallel = run_monte_carlo(base.with_workers(3, shard_size=300))
        assert serial.availability == parallel.availability
        assert serial.interval.half_width == parallel.interval.half_width
        assert serial.totals == parallel.totals
        assert serial.n_iterations == parallel.n_iterations == 1200

    def test_sharded_run_reproducible(self):
        config = _config(workers=2)
        first = run_sharded(config)
        second = run_sharded(config)
        assert first.availability == second.availability
        assert first.totals == second.totals

    def test_shard_summary_merge_matches_pooled_samples(self):
        # The merged streaming variance must equal np.var(ddof=1) over the
        # pooled per-lifetime availabilities to within 1e-12.
        config = _config(n_iterations=1000)
        entropy = RandomStreams(config.seed).seed_entropy
        sizes = plan_shards(config.n_iterations, 250)
        moments = StreamingMoments()
        samples = []
        policy = get_policy("conventional")
        for index, size in enumerate(sizes):
            summary = run_shard(config, entropy, index, size)
            moments.merge(summary.moments)
            batch = policy.simulate_shard(
                config.params,
                config.horizon_hours,
                size,
                RandomStreams(entropy).spawn_child(index),
            )
            samples.append(batch.availabilities())
        pooled = np.concatenate(samples)
        assert moments.n == pooled.size
        assert moments.mean == pytest.approx(float(np.mean(pooled)), abs=1e-12)
        assert moments.variance() == pytest.approx(float(np.var(pooled, ddof=1)), abs=1e-12)

    def test_merge_totals_sums_shards(self):
        merged = merge_totals(
            [
                {"downtime_hours": 1.5, "disk_failures": 3.0},
                {"downtime_hours": 0.5, "human_errors": 2.0},
            ]
        )
        assert merged["downtime_hours"] == pytest.approx(2.0)
        assert merged["disk_failures"] == 3.0
        assert merged["human_errors"] == 2.0
        assert merged["du_events"] == 0.0


class TestStatisticalConsistency:
    @pytest.mark.parametrize("policy", ["conventional", "hot_spare_pool"])
    def test_executors_agree_within_confidence(self, policy):
        # Scalar, batch, 1-worker sharded and 2-worker sharded estimates of
        # the same scenario must have overlapping 99 % intervals.
        base = _config(policy=policy, n_iterations=1500, confidence=0.99)
        results = {
            "scalar": run_monte_carlo(base.with_executor("scalar")),
            "batch": run_monte_carlo(base.with_executor("batch")),
            "sharded-1w": run_monte_carlo(base.with_workers(1, shard_size=500)),
            "sharded-2w": run_monte_carlo(base.with_workers(2, shard_size=500)),
        }
        names = list(results)
        for i, a in enumerate(names):
            for b in names[i + 1 :]:
                low = max(results[a].interval.lower, results[b].interval.lower)
                high = min(results[a].interval.upper, results[b].interval.upper)
                assert low <= high, f"{a} and {b} intervals do not overlap"

    def test_sharded_scalar_executor_supported(self):
        # executor="scalar" on the sharded path forces the per-lifetime
        # loop inside each shard; the estimate must agree with the batch
        # kernels at the 99 % level.
        base = _config(n_iterations=800)
        scalar_sharded = run_monte_carlo(
            base.with_executor("scalar").with_workers(2, shard_size=400)
        )
        batch_sharded = run_monte_carlo(base.with_workers(2, shard_size=400))
        low = max(scalar_sharded.interval.lower, batch_sharded.interval.lower)
        high = min(scalar_sharded.interval.upper, batch_sharded.interval.upper)
        assert low <= high
        assert scalar_sharded.n_iterations == 800


class TestAdaptiveStopping:
    def test_stops_once_target_met(self):
        # A target equal to the interval the first round already achieves
        # must stop after that round.
        first = run_monte_carlo(_config(shard_size=2000))
        config = _config(
            shard_size=2000,
            target_half_width=first.interval.half_width * 1.01,
        )
        result = run_monte_carlo(config)
        assert result.n_iterations == 2000
        assert result.interval.half_width <= config.target_half_width

    def test_grows_until_target_met(self):
        first = run_monte_carlo(_config(n_iterations=500, shard_size=500))
        target = first.interval.half_width / 2.0
        result = run_monte_carlo(
            _config(
                n_iterations=500,
                shard_size=500,
                target_half_width=target,
                max_iterations=100_000,
            )
        )
        assert result.n_iterations > 500
        assert result.interval.half_width <= target

    def test_ceiling_respected_for_unreachable_target(self):
        result = run_monte_carlo(
            _config(
                n_iterations=500,
                shard_size=500,
                target_half_width=1e-12,
                max_iterations=2000,
            )
        )
        assert result.n_iterations == 2000
        assert result.interval.half_width > 1e-12

    def test_zero_variance_round_is_not_trusted(self):
        # A no-event first round has a zero-width interval; the loop must
        # keep sampling to the ceiling instead of declaring convergence.
        config = MonteCarloConfig(
            params=paper_parameters(disk_failure_rate=1e-12, hep=0.0),
            n_iterations=500,
            shard_size=500,
            horizon_hours=1000.0,
            seed=1,
            target_half_width=1e-3,
            max_iterations=2000,
        )
        result = run_monte_carlo(config)
        assert result.n_iterations == 2000
        assert result.interval.half_width == 0.0

    def test_adaptive_with_workers(self):
        first = run_monte_carlo(_config(n_iterations=500, shard_size=250))
        target = first.interval.half_width / 1.5
        result = run_monte_carlo(
            _config(
                n_iterations=500,
                shard_size=250,
                workers=2,
                target_half_width=target,
                max_iterations=50_000,
            )
        )
        assert result.interval.half_width <= target


class TestSeedEntropyReplay:
    def test_seed_entropy_recorded_on_all_paths(self):
        base = _config(n_iterations=200)
        assert run_monte_carlo(base.with_executor("batch")).seed_entropy == 13
        assert run_monte_carlo(base.with_executor("scalar")).seed_entropy == 13
        assert run_monte_carlo(base.with_workers(2)).seed_entropy == 13

    def test_unseeded_run_replayable_from_recorded_entropy(self):
        config = _config(n_iterations=400, seed=None, workers=1, shard_size=200)
        first = run_monte_carlo(config)
        assert first.seed_entropy is not None
        replay = run_monte_carlo(
            _config(n_iterations=400, seed=first.seed_entropy, workers=1, shard_size=200)
        )
        assert replay.availability == first.availability
        assert replay.totals == first.totals

    def test_unseeded_runs_differ(self):
        config = _config(n_iterations=200, seed=None, shard_size=100)
        first = run_monte_carlo(config)
        second = run_monte_carlo(config)
        assert first.seed_entropy != second.seed_entropy

    def test_seed_entropy_serialised(self):
        payload = run_monte_carlo(_config(n_iterations=200)).as_dict()
        assert payload["seed_entropy"] == 13


class TestShardKernelEntry:
    def test_simulate_shard_uses_montecarlo_stream(self):
        # A shard's draws must equal a plain batch run seeded with the same
        # family — the shard entry only fixes *which* family is used.
        config = _config(n_iterations=300)
        policy = get_policy("conventional")
        family = RandomStreams(13).spawn_child(0)
        shard = policy.simulate_shard(config.params, config.horizon_hours, 300, family)
        direct = run_batch_lifetimes(config, streams=RandomStreams(13).spawn_child(0))
        assert np.array_equal(shard.availabilities(), direct.availabilities())

    def test_force_scalar_falls_back_to_loop(self):
        config = _config(n_iterations=50)
        policy = get_policy("conventional")
        family = RandomStreams(13).spawn_child(0)
        batch = policy.simulate_shard(
            config.params, config.horizon_hours, 50, family, force_scalar=True
        )
        assert len(batch) == 50
        assert np.all(batch.availabilities() <= 1.0)
