"""Property-based tests for the Markov engine (hypothesis)."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.markov import (
    MarkovChain,
    State,
    Transition,
    embedded_jump_matrix,
    solve_steady_state_dense,
    steady_state_availability,
)

RATE = st.floats(min_value=1e-7, max_value=10.0, allow_nan=False, allow_infinity=False)


def _ring_chain(rates):
    """Build a ring of states, which is always irreducible."""
    n = len(rates)
    states = [State(f"S{i}", up=(i == 0)) for i in range(n)]
    transitions = [Transition(f"S{i}", f"S{(i + 1) % n}", rates[i]) for i in range(n)]
    return MarkovChain(states, transitions)


@given(rates=st.lists(RATE, min_size=2, max_size=8))
@settings(max_examples=60)
def test_stationary_distribution_is_probability_vector(rates):
    chain = _ring_chain(rates)
    pi = solve_steady_state_dense(chain)
    values = np.array(list(pi.values()))
    assert np.all(values >= -1e-12)
    np.testing.assert_allclose(values.sum(), 1.0, rtol=1e-9)


@given(rates=st.lists(RATE, min_size=2, max_size=8))
@settings(max_examples=60)
def test_stationary_distribution_satisfies_balance(rates):
    chain = _ring_chain(rates)
    pi = solve_steady_state_dense(chain)
    vec = np.array([pi[name] for name in chain.state_names])
    residual = vec @ chain.generator_matrix()
    scale = max(1.0, float(np.max(np.abs(chain.generator_matrix()))))
    assert np.max(np.abs(residual)) <= 1e-8 * scale


@given(rates=st.lists(RATE, min_size=2, max_size=6))
@settings(max_examples=60)
def test_generator_rows_sum_to_zero(rates):
    chain = _ring_chain(rates)
    np.testing.assert_allclose(chain.generator_matrix().sum(axis=1), 0.0, atol=1e-12)


@given(rates=st.lists(RATE, min_size=2, max_size=6))
@settings(max_examples=60)
def test_embedded_jump_matrix_is_stochastic(rates):
    chain = _ring_chain(rates)
    p = embedded_jump_matrix(chain)
    np.testing.assert_allclose(p.sum(axis=1), 1.0, atol=1e-12)
    assert np.all(p >= 0.0)


@given(rates=st.lists(RATE, min_size=2, max_size=6))
@settings(max_examples=40)
def test_availability_in_unit_interval(rates):
    chain = _ring_chain(rates)
    result = steady_state_availability(chain)
    assert 0.0 <= result.availability <= 1.0
    assert 0.0 <= result.unavailability <= 1.0


@given(
    failure=st.floats(min_value=1e-8, max_value=0.1),
    repair=st.floats(min_value=0.01, max_value=10.0),
)
@settings(max_examples=60)
def test_two_state_closed_form(failure, repair):
    chain = MarkovChain(
        [State("UP"), State("DOWN", up=False)],
        [Transition("UP", "DOWN", failure), Transition("DOWN", "UP", repair)],
    )
    result = steady_state_availability(chain)
    np.testing.assert_allclose(result.availability, repair / (failure + repair), rtol=1e-8)
