"""Unit tests for transient analysis and DTMC helpers."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.exceptions import SolverError
from repro.markov import (
    MarkovChain,
    State,
    Transition,
    dtmc_stationary_distribution,
    embedded_jump_matrix,
    interval_availability,
    n_step_distribution,
    occupancy_fraction,
    point_availability,
    solve_steady_state_dense,
    steady_state_via_discretisation,
    step_transition_matrix,
    transient_distribution_expm,
    transient_distribution_uniformization,
)


def two_state(failure=0.2, repair=1.0) -> MarkovChain:
    return MarkovChain(
        [State("UP"), State("DOWN", up=False)],
        [Transition("UP", "DOWN", failure), Transition("DOWN", "UP", repair)],
    )


class TestTransient:
    def test_matches_closed_form_two_state(self):
        failure, repair = 0.2, 1.0
        chain = two_state(failure, repair)
        times = [0.0, 0.5, 1.0, 5.0, 50.0]
        result = transient_distribution_uniformization(chain, times)
        total = failure + repair
        for i, t in enumerate(times):
            expected_up = repair / total + failure / total * math.exp(-total * t)
            assert result.probabilities[i, 0] == pytest.approx(expected_up, rel=1e-8)

    def test_expm_and_uniformization_agree(self):
        chain = two_state()
        times = np.linspace(0.0, 20.0, 11)
        a = transient_distribution_expm(chain, times)
        b = transient_distribution_uniformization(chain, times)
        assert np.allclose(a.probabilities, b.probabilities, atol=1e-8)

    def test_long_time_converges_to_steady_state(self):
        chain = two_state()
        pi = solve_steady_state_dense(chain)
        result = transient_distribution_uniformization(chain, [1000.0])
        assert result.probabilities[0, 0] == pytest.approx(pi["UP"], rel=1e-6)

    def test_rows_are_distributions(self):
        chain = two_state()
        result = transient_distribution_uniformization(chain, np.linspace(0, 10, 5))
        assert np.allclose(result.probabilities.sum(axis=1), 1.0)
        assert np.all(result.probabilities >= 0.0)

    def test_point_availability_starts_at_one(self):
        chain = two_state()
        out = point_availability(chain, [0.0, 1.0, 10.0])
        assert out["availability"][0] == pytest.approx(1.0)
        assert np.all(np.diff(out["availability"]) <= 1e-12)

    def test_interval_availability_between_point_values(self):
        chain = two_state()
        interval = interval_availability(chain, horizon_hours=10.0)
        steady = solve_steady_state_dense(chain)["UP"]
        assert steady <= interval <= 1.0

    def test_invalid_inputs(self):
        chain = two_state()
        with pytest.raises(SolverError):
            transient_distribution_uniformization(chain, [])
        with pytest.raises(SolverError):
            transient_distribution_expm(chain, [-1.0])
        with pytest.raises(SolverError):
            point_availability(chain, [1.0], method="nope")
        with pytest.raises(SolverError):
            interval_availability(chain, horizon_hours=0.0)

    def test_result_accessors(self):
        chain = two_state()
        result = transient_distribution_uniformization(chain, [1.0, 2.0])
        assert result.probability_of("UP").shape == (2,)
        with pytest.raises(SolverError):
            result.probability_of("MISSING")
        downtime = result.expected_downtime_hours([True, False])
        assert downtime >= 0.0


class TestTransientGridReuse:
    """The grid-level reuse optimisations must not change the answers."""

    def test_uniform_grid_matches_per_time_expm(self):
        chain = two_state()
        times = np.linspace(0.0, 40.0, 60)
        fast = transient_distribution_expm(chain, times)
        slow = transient_distribution_expm(chain, times, uniform_grid=False)
        assert np.max(np.abs(fast.probabilities - slow.probabilities)) < 1e-10

    def test_uniform_grid_not_starting_at_zero(self):
        chain = two_state()
        times = np.linspace(3.0, 30.0, 28)
        fast = transient_distribution_expm(chain, times)
        slow = transient_distribution_expm(chain, times, uniform_grid=False)
        assert np.max(np.abs(fast.probabilities - slow.probabilities)) < 1e-10

    def test_non_uniform_grid_falls_back(self):
        chain = two_state()
        times = [0.0, 1.0, 2.0, 10.0, 50.0]
        auto = transient_distribution_expm(chain, times)
        slow = transient_distribution_expm(chain, times, uniform_grid=False)
        assert np.array_equal(auto.probabilities, slow.probabilities)

    def test_forced_uniform_on_ragged_grid_rejected(self):
        with pytest.raises(SolverError):
            transient_distribution_expm(
                two_state(), [0.0, 1.0, 5.0], uniform_grid=True
            )

    def test_uniformization_shared_powers_match_per_time_loop(self):
        # The shared p0 @ P^k sequence is the same matvec chain the old
        # per-time loop walked, so the grid result must agree with solving
        # every time on its own (separate calls rebuild the sequence).
        chain = two_state()
        times = [0.5, 2.0, 7.5, 20.0]
        together = transient_distribution_uniformization(chain, times)
        for k, t in enumerate(times):
            alone = transient_distribution_uniformization(chain, [t])
            assert np.array_equal(together.probabilities[k], alone.probabilities[0])

    def test_uniformization_terminates_on_weight_plateau(self):
        # Large Lambda*t used to loop to max_terms when the accumulated
        # Poisson mass plateaued a few ulps below 1 - tolerance; the tail
        # bound now terminates the series.  Regression for the fail-over
        # chain at ~1150 hours (Lambda*t ~ 2.4e3).
        from repro.core.models import build_failover_chain
        from repro.core.parameters import paper_parameters

        chain = build_failover_chain(paper_parameters(disk_failure_rate=1e-6, hep=0.01))
        result = transient_distribution_uniformization(chain, [1150.2])
        assert np.isfinite(result.probabilities).all()
        expm = transient_distribution_expm(chain, [1150.2])
        assert np.max(np.abs(result.probabilities - expm.probabilities)) < 1e-9


class TestDtmcHelpers:
    def test_embedded_jump_matrix_rows_sum_to_one(self):
        chain = two_state()
        p = embedded_jump_matrix(chain)
        assert np.allclose(p.sum(axis=1), 1.0)
        assert p[0, 1] == pytest.approx(1.0)

    def test_embedded_jump_matrix_absorbing_self_loop(self):
        chain = MarkovChain(
            [State("A"), State("B", up=False)], [Transition("A", "B", 1.0)]
        )
        p = embedded_jump_matrix(chain)
        assert p[1, 1] == pytest.approx(1.0)

    def test_step_matrix_matches_paper_self_loops(self):
        # The paper's Fig. 2 annotates R1 = 1 - n*lambda for a 1-hour step.
        chain = two_state(failure=0.2, repair=0.5)
        p = step_transition_matrix(chain, step_hours=1.0)
        assert p[0, 0] == pytest.approx(0.8)
        assert p[1, 1] == pytest.approx(0.5)

    def test_step_matrix_too_coarse_rejected(self):
        chain = two_state(failure=2.0, repair=1.0)
        with pytest.raises(SolverError):
            step_transition_matrix(chain, step_hours=1.0)

    def test_discretised_steady_state_matches_ctmc(self):
        chain = two_state(failure=0.01, repair=0.2)
        ctmc = solve_steady_state_dense(chain)
        dtmc = steady_state_via_discretisation(chain, step_hours=1.0)
        for name in chain.state_names:
            assert dtmc[name] == pytest.approx(ctmc[name], rel=1e-8)

    def test_dtmc_stationary_validates_input(self):
        with pytest.raises(SolverError):
            dtmc_stationary_distribution(np.array([[0.5, 0.6], [0.5, 0.5]]))
        with pytest.raises(SolverError):
            dtmc_stationary_distribution(np.ones((2, 3)))

    def test_n_step_distribution(self):
        p = np.array([[0.9, 0.1], [0.5, 0.5]])
        out = n_step_distribution(p, np.array([1.0, 0.0]), 3)
        assert out.sum() == pytest.approx(1.0)
        with pytest.raises(SolverError):
            n_step_distribution(p, np.array([0.7, 0.7]), 1)

    def test_occupancy_fraction_sums_to_one(self):
        chain = two_state()
        occ = occupancy_fraction(chain, step_hours=0.5, horizon_hours=100.0)
        assert sum(occ.values()) == pytest.approx(1.0)
