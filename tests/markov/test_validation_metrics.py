"""Unit tests for chain validation and availability metrics."""

from __future__ import annotations

import pytest

from repro.exceptions import MarkovChainError
from repro.markov import (
    ChainBuilder,
    MarkovChain,
    State,
    Transition,
    check_reachability,
    compare_availability,
    expected_visits_per_year,
    find_absorbing_states,
    is_irreducible,
    mean_time_to_failure,
    state_occupancy_report,
    steady_state_availability,
    validate_chain,
)


def availability_chain(failure=0.01, repair=1.0) -> MarkovChain:
    return MarkovChain(
        [State("UP"), State("DOWN", up=False)],
        [Transition("UP", "DOWN", failure), Transition("DOWN", "UP", repair)],
    )


class TestValidation:
    def test_valid_chain_passes(self):
        report = validate_chain(availability_chain())
        assert report.ok and not report.errors

    def test_unreachable_state_detected(self):
        chain = MarkovChain(
            [State("A"), State("B"), State("C", up=False)],
            [Transition("A", "B", 1.0), Transition("B", "A", 1.0), Transition("C", "A", 1.0)],
        )
        with pytest.raises(MarkovChainError):
            validate_chain(chain)
        report = validate_chain(chain, raise_on_error=False)
        assert not report.ok and any("unreachable" in e for e in report.errors)

    def test_absorbing_state_detected(self):
        chain = MarkovChain(
            [State("A"), State("B", up=False)], [Transition("A", "B", 1.0)]
        )
        report = validate_chain(chain, raise_on_error=False)
        assert not report.ok
        relaxed = validate_chain(chain, allow_absorbing=True, raise_on_error=False)
        assert relaxed.ok and relaxed.warnings

    def test_reachability_helper(self):
        chain = availability_chain()
        reachable, unreachable = check_reachability(chain)
        assert reachable == {"UP", "DOWN"} and not unreachable

    def test_absorbing_helper(self):
        chain = MarkovChain([State("A"), State("B", up=False)], [Transition("A", "B", 1.0)])
        assert find_absorbing_states(chain) == ["B"]

    def test_irreducibility(self):
        assert is_irreducible(availability_chain())
        chain = MarkovChain([State("A"), State("B", up=False)], [Transition("A", "B", 1.0)])
        assert not is_irreducible(chain)

    def test_builder_validates_on_build(self):
        builder = ChainBuilder()
        builder.add_up_state("A").add_down_state("B")
        builder.add_transition("A", "B", 1.0)
        with pytest.raises(MarkovChainError):
            builder.build(validate=True)
        chain = builder.build(validate=False)
        assert chain.n_states == 2


class TestAvailabilityMetrics:
    def test_two_state_availability(self):
        failure, repair = 0.01, 1.0
        result = steady_state_availability(availability_chain(failure, repair))
        expected = repair / (failure + repair)
        assert result.availability == pytest.approx(expected, rel=1e-9)
        assert result.unavailability == pytest.approx(1 - expected, rel=1e-6)
        assert result.nines == pytest.approx(-1 * __import__("math").log10(1 - expected), rel=1e-6)
        assert result.downtime_hours_per_year == pytest.approx((1 - expected) * 8760.0, rel=1e-6)

    def test_custom_up_states_override(self):
        chain = availability_chain()
        result = steady_state_availability(chain, up_states=["UP", "DOWN"])
        assert result.availability == pytest.approx(1.0)

    def test_probability_accessor(self):
        result = steady_state_availability(availability_chain())
        assert result.probability_of("UP") > 0.9
        with pytest.raises(MarkovChainError):
            result.probability_of("MISSING")

    def test_as_dict_keys(self):
        payload = steady_state_availability(availability_chain()).as_dict()
        assert {"availability", "nines", "state_probabilities"} <= set(payload)

    def test_mean_time_to_failure_two_state(self):
        result = mean_time_to_failure(availability_chain(failure=0.01), ["DOWN"], "UP")
        assert result == pytest.approx(100.0)

    def test_mean_time_to_failure_requires_states(self):
        chain = MarkovChain([State("A"), State("B")], [Transition("A", "B", 1.0), Transition("B", "A", 1.0)])
        with pytest.raises(MarkovChainError):
            mean_time_to_failure(chain)

    def test_expected_visits_per_year(self):
        failure = 0.01
        chain = availability_chain(failure=failure, repair=1.0)
        visits = expected_visits_per_year(chain, "DOWN")
        availability = 1.0 / (1.0 + failure)
        assert visits == pytest.approx(availability * failure * 8760.0, rel=1e-6)

    def test_state_occupancy_report(self):
        report = state_occupancy_report(availability_chain())
        assert set(report) == {"UP", "DOWN"}
        assert sum(entry["probability"] for entry in report.values()) == pytest.approx(1.0)

    def test_compare_availability_ratio(self):
        base = steady_state_availability(availability_chain(failure=0.001))
        worse = steady_state_availability(availability_chain(failure=0.01))
        comparison = compare_availability(base, worse)
        assert comparison["unavailability_ratio"] == pytest.approx(
            worse.unavailability / base.unavailability, rel=1e-9
        )
        assert comparison["nines_delta"] < 0.0


class TestSharedStationaryVector:
    """Satellite: one steady-state solve serves every metric via ``pi``."""

    def test_precomputed_pi_matches_internal_solve(self):
        from repro.markov import solve_steady_state

        chain = availability_chain(failure=0.02, repair=0.5)
        pi = solve_steady_state(chain)
        shared = steady_state_availability(chain, pi=pi)
        fresh = steady_state_availability(chain)
        assert shared.availability == fresh.availability
        assert shared.state_probabilities == fresh.state_probabilities
        assert expected_visits_per_year(chain, "DOWN", pi=pi) == expected_visits_per_year(
            chain, "DOWN"
        )
        assert state_occupancy_report(chain, pi=pi) == state_occupancy_report(chain)

    def test_pi_argument_skips_the_solver(self, monkeypatch):
        import repro.markov.metrics as metrics_module

        chain = availability_chain()
        pi = metrics_module.solve_steady_state(chain)
        calls = {"n": 0}

        def counting_solve(*args, **kwargs):
            calls["n"] += 1
            return pi

        monkeypatch.setattr(metrics_module, "solve_steady_state", counting_solve)
        steady_state_availability(chain, pi=pi)
        expected_visits_per_year(chain, "DOWN", pi=pi)
        state_occupancy_report(chain, pi=pi)
        assert calls["n"] == 0
        steady_state_availability(chain)
        assert calls["n"] == 1

    def test_availability_result_from_pi_direct(self):
        from repro.markov import availability_result_from_pi

        chain = availability_chain(failure=0.1, repair=1.0)
        pi = {"UP": 1.0 / 1.1, "DOWN": 0.1 / 1.1}
        result = availability_result_from_pi(pi, chain.state_names, ("UP",))
        assert result.availability == pytest.approx(1.0 / 1.1)
        assert result.down_states == ("DOWN",)
