"""Unit tests for the steady-state solvers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import SolverError
from repro.markov import (
    MarkovChain,
    State,
    Transition,
    mean_time_to_absorption,
    solve_steady_state,
    solve_steady_state_dense,
    solve_steady_state_least_squares,
    solve_steady_state_power,
    solve_steady_state_sparse,
    stationary_vector,
)


def two_state(failure=0.01, repair=1.0) -> MarkovChain:
    return MarkovChain(
        [State("UP"), State("DOWN", up=False)],
        [Transition("UP", "DOWN", failure), Transition("DOWN", "UP", repair)],
    )


def cyclic_three_state() -> MarkovChain:
    return MarkovChain(
        [State("A"), State("B"), State("C", up=False)],
        [
            Transition("A", "B", 2.0),
            Transition("B", "C", 1.0),
            Transition("C", "A", 0.5),
        ],
    )


class TestTwoStateAnalytic:
    """The two-state chain has the textbook solution pi_down = f / (f + r)."""

    @pytest.mark.parametrize(
        "method",
        ["dense", "lstsq", "power", "sparse"],
    )
    def test_matches_closed_form(self, method):
        failure, repair = 0.01, 1.0
        pi = solve_steady_state(two_state(failure, repair), method=method)
        assert pi["DOWN"] == pytest.approx(failure / (failure + repair), rel=1e-6)
        assert pi["UP"] + pi["DOWN"] == pytest.approx(1.0)

    def test_unknown_method(self):
        with pytest.raises(SolverError):
            solve_steady_state(two_state(), method="magic")


class TestSolverConsistency:
    def test_all_methods_agree_on_cycle(self):
        chain = cyclic_three_state()
        dense = solve_steady_state_dense(chain)
        lstsq = solve_steady_state_least_squares(chain)
        sparse = solve_steady_state_sparse(chain)
        power = solve_steady_state_power(chain)
        for name in chain.state_names:
            assert dense[name] == pytest.approx(lstsq[name], rel=1e-8)
            assert dense[name] == pytest.approx(sparse[name], rel=1e-8)
            assert dense[name] == pytest.approx(power[name], rel=1e-4)

    def test_cycle_closed_form(self):
        # Stationary probabilities of a cycle are proportional to 1/exit rate.
        chain = cyclic_three_state()
        pi = solve_steady_state_dense(chain)
        weights = {"A": 1 / 2.0, "B": 1 / 1.0, "C": 1 / 0.5}
        total = sum(weights.values())
        for name, weight in weights.items():
            assert pi[name] == pytest.approx(weight / total, rel=1e-9)

    def test_stationary_vector_order(self):
        chain = cyclic_three_state()
        vec = stationary_vector(chain)
        pi = solve_steady_state_dense(chain)
        assert np.allclose(vec, [pi[name] for name in chain.state_names])

    def test_wide_rate_range_remains_normalised(self):
        # Rates spanning 8 orders of magnitude, as in the availability models.
        chain = MarkovChain(
            [State("OP"), State("EXP"), State("DL", up=False)],
            [
                Transition("OP", "EXP", 4e-6),
                Transition("EXP", "OP", 0.1),
                Transition("EXP", "DL", 3e-6),
                Transition("DL", "OP", 0.03),
            ],
        )
        pi = solve_steady_state_dense(chain)
        assert sum(pi.values()) == pytest.approx(1.0)
        assert pi["DL"] == pytest.approx(4e-6 / 0.1 * 3e-6 / 0.03, rel=1e-3)


class TestMeanTimeToAbsorption:
    def test_single_transient_state(self):
        chain = MarkovChain(
            [State("UP"), State("DOWN", up=False)],
            [Transition("UP", "DOWN", 0.5)],
        )
        assert mean_time_to_absorption(chain, ["DOWN"], "UP") == pytest.approx(2.0)

    def test_birth_death_mttdl(self):
        # Classic RAID5 MTTDL check: OP -> EXP -> DL with repair back.
        n, lam, mu = 4, 1e-5, 0.1
        chain = MarkovChain(
            [State("OP"), State("EXP"), State("DL", up=False)],
            [
                Transition("OP", "EXP", n * lam),
                Transition("EXP", "OP", mu),
                Transition("EXP", "DL", (n - 1) * lam),
            ],
        )
        expected = ((2 * n - 1) * lam + mu) / (n * (n - 1) * lam ** 2)
        assert mean_time_to_absorption(chain, ["DL"], "OP") == pytest.approx(expected, rel=1e-9)

    def test_start_in_absorbing_state_is_zero(self):
        chain = two_state()
        absorbing = chain.with_states_absorbing(["DOWN"])
        assert mean_time_to_absorption(absorbing, ["DOWN"], "DOWN") == 0.0

    def test_requires_absorbing_set(self):
        with pytest.raises(SolverError):
            mean_time_to_absorption(two_state(), [])
