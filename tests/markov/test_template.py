"""Unit tests for rate expressions and parameterized chain templates."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.models.baseline import build_baseline_chain
from repro.core.models.raid5_conventional import build_conventional_chain
from repro.core.models.raid5_failover import build_failover_chain
from repro.core.parameters import paper_parameters
from repro.exceptions import SolverError, TransitionError
from repro.markov.builder import ChainBuilder
from repro.markov.rates import (
    PARAMETER_SYMBOLS,
    compile_rate_expression,
    symbol_table,
)
from repro.markov.solver import SPARSE_STATE_THRESHOLD, resolve_method
from repro.markov.template import ChainTemplate
from repro.storage.raid import RaidGeometry

MODEL_BUILDERS = {
    "baseline": build_baseline_chain,
    "conventional": build_conventional_chain,
    "automatic_failover": build_failover_chain,
}


class TestRateExpressions:
    def test_simple_symbols_evaluate(self):
        params = paper_parameters(hep=0.01)
        table = symbol_table(params)
        assert compile_rate_expression("mu_DF")(table) == params.disk_repair_rate
        assert compile_rate_expression("lambda")(table) == params.disk_failure_rate
        assert compile_rate_expression("lambda_crash")(table) == params.crash_rate

    def test_builder_arithmetic_is_reproduced_bitwise(self):
        params = paper_parameters(hep=0.01)
        table = symbol_table(params)
        n = params.geometry.n_disks
        assert compile_rate_expression("n*lambda")(table) == n * params.disk_failure_rate
        assert (
            compile_rate_expression("(1-hep)*mu_DF")(table)
            == (1.0 - params.hep) * params.disk_repair_rate
        )
        assert (
            compile_rate_expression("hep*(mu_DF+mu_ch)")(table)
            == params.hep * (params.disk_repair_rate + params.spare_replacement_rate)
        )

    def test_symbol_dependencies_recorded(self):
        expr = compile_rate_expression("hep*(mu_DF+mu_ch)")
        assert expr.symbols == {"hep", "mu_DF", "mu_ch"}
        assert not expr.is_constant
        assert compile_rate_expression("2*lambda_crash").symbols == {"lam_crash"}

    def test_unknown_symbol_rejected(self):
        with pytest.raises(TransitionError):
            compile_rate_expression("mu_unknown")

    def test_empty_label_rejected(self):
        with pytest.raises(TransitionError):
            compile_rate_expression("")

    def test_malformed_expression_rejected(self):
        with pytest.raises(TransitionError):
            compile_rate_expression("hep*")

    def test_function_calls_rejected(self):
        with pytest.raises(TransitionError):
            compile_rate_expression("abs(hep)")

    def test_parameter_symbol_map_covers_every_rate_field(self):
        params = paper_parameters()
        table = symbol_table(params)
        for field, symbol in PARAMETER_SYMBOLS.items():
            assert symbol in table
            assert hasattr(params, field)


class TestChainTemplate:
    @pytest.mark.parametrize("name", sorted(MODEL_BUILDERS))
    def test_generator_matches_fresh_build(self, name):
        build = MODEL_BUILDERS[name]
        params = paper_parameters(hep=0.003)
        template = ChainTemplate(build(params), params)
        assert np.array_equal(
            template.generator_matrix(params), build(params).generator_matrix()
        )

    @pytest.mark.parametrize("name", sorted(MODEL_BUILDERS))
    def test_incremental_update_matches_fresh_build(self, name):
        build = MODEL_BUILDERS[name]
        base = paper_parameters(hep=0.003)
        evaluator = ChainTemplate(build(base), base).evaluator(base)
        for params in (
            base.with_hep(0.01),
            base.with_hep(0.01).with_failure_rate(2e-5),
            base.with_failure_rate(7e-7).with_hep(0.25),
        ):
            evaluator.set_params(params)
            assert np.array_equal(
                evaluator.generator_matrix(), build(params).generator_matrix()
            )

    def test_hep_change_rewrites_only_affected_entries(self):
        params = paper_parameters(hep=0.003)
        chain = build_conventional_chain(params)
        evaluator = ChainTemplate(chain, params).evaluator(params)
        evaluator.set_params(params.with_hep(0.01))
        hep_entries = sum(
            1 for t in chain.transitions if "hep" in t.label
        )
        assert evaluator.last_rewrites == hep_entries
        evaluator.set_params(params.with_hep(0.01))  # no change at all
        assert evaluator.last_rewrites == 0

    def test_unaffected_symbol_rewrites_nothing(self):
        # The baseline chain never mentions hep, so a hep change is free.
        params = paper_parameters(hep=0.003)
        evaluator = ChainTemplate(build_baseline_chain(params), params).evaluator(params)
        evaluator.set_params(params.with_hep(0.42))
        assert evaluator.last_rewrites == 0

    def test_geometry_is_a_template_axis(self):
        params = paper_parameters(geometry=RaidGeometry.raid5(3), hep=0.01)
        build = build_conventional_chain
        evaluator = ChainTemplate(build(params), params).evaluator(params)
        wider = params.with_geometry(RaidGeometry.raid5(7))
        evaluator.set_params(wider)
        assert np.array_equal(
            evaluator.generator_matrix(), build(wider).generator_matrix()
        )

    def test_unlabelled_transition_rejected(self):
        params = paper_parameters()
        builder = ChainBuilder("unlabelled")
        builder.add_up_state("A").add_down_state("B")
        builder.add_transition("A", "B", 0.5)  # no label
        builder.add_transition("B", "A", 0.5, label="mu_DF")
        with pytest.raises(TransitionError):
            ChainTemplate(builder.build(validate=False), params)

    def test_label_disagreeing_with_rate_rejected(self):
        params = paper_parameters()
        builder = ChainBuilder("lying-label")
        builder.add_up_state("A").add_down_state("B")
        builder.add_transition("A", "B", 123.0, label="mu_DF")  # mu_DF is 0.1
        builder.add_transition("B", "A", params.disk_repair_rate, label="mu_DF")
        with pytest.raises(TransitionError):
            ChainTemplate(builder.build(validate=False), params)


class TestSolverEquivalenceOnTemplates:
    """Satellite: dense vs sparse vs power on the same parameterized template."""

    @pytest.mark.parametrize("name", sorted(MODEL_BUILDERS))
    def test_dense_sparse_power_agree(self, name):
        build = MODEL_BUILDERS[name]
        params = paper_parameters(disk_failure_rate=1e-5, hep=0.01)
        evaluator = ChainTemplate(build(params), params).evaluator(params)
        dense = evaluator.solve(method="dense")
        sparse = evaluator.solve(method="sparse")
        power = evaluator.solve(method="power")
        np.testing.assert_allclose(sparse, dense, rtol=0, atol=1e-12)
        np.testing.assert_allclose(power, dense, rtol=0, atol=1e-7)

    def test_auto_selects_dense_for_small_chains(self):
        params = paper_parameters()
        evaluator = ChainTemplate(
            build_conventional_chain(params), params
        ).evaluator(params)
        assert evaluator.solver_name("auto") == "dense"
        assert evaluator.solver_name("sparse") == "sparse"

    def test_auto_threshold(self):
        assert resolve_method("auto", SPARSE_STATE_THRESHOLD - 1) == "dense"
        assert resolve_method("auto", SPARSE_STATE_THRESHOLD) == "sparse"

    def test_unknown_method_rejected(self):
        with pytest.raises(SolverError):
            resolve_method("cholesky", 4)
