"""Unit tests for the periodic check/repair cycle solver."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core.parameters import paper_parameters
from repro.core.policies.erasure import build_erasure_decay_chain, erasure_policy
from repro.exceptions import ConfigurationError, SolverError
from repro.markov.checker import (
    DOWN_STATE,
    check_repair_matrix,
    cycle_operator,
    cycle_start_distribution,
    cycle_stationary_availability,
    share_state_name,
    survival_curve,
)
from repro.storage.raid import RaidGeometry

MONTH = 730.0


def erasure_params(k, n, rate=1e-4, hep=0.0):
    return paper_parameters(
        geometry=RaidGeometry.erasure(k, n), disk_failure_rate=rate, hep=hep
    )


def decay_chain(k, n, rate=1e-4):
    params = erasure_params(k, n, rate=rate)
    return build_erasure_decay_chain(params), params


class TestCheckRepairMatrix:
    def test_rows_are_stochastic(self):
        chain, _ = decay_chain(3, 10)
        d = check_repair_matrix(chain, 10, 3, 7, hep=0.1)
        assert np.all(d >= 0.0)
        np.testing.assert_allclose(d.sum(axis=1), 1.0, atol=1e-15)

    def test_above_threshold_rows_are_identity(self):
        chain, _ = decay_chain(3, 10)
        d = check_repair_matrix(chain, 10, 3, 7, hep=0.1)
        for s in range(7, 11):
            i = chain.index_of(share_state_name(s))
            row = np.zeros(chain.n_states)
            row[i] = 1.0
            np.testing.assert_array_equal(d[i], row)

    def test_degraded_rows_repair_with_botch_risk(self):
        chain, _ = decay_chain(3, 10)
        hep = 0.1
        d = check_repair_matrix(chain, 10, 3, 7, hep=hep)
        full = chain.index_of(share_state_name(10))
        botched = chain.index_of(share_state_name(9))
        for s in range(3, 7):
            i = chain.index_of(share_state_name(s))
            assert d[i, full] == pytest.approx(1.0 - hep)
            assert d[i, botched] == pytest.approx(hep)
            assert d[i].sum() == pytest.approx(1.0)

    def test_down_row_restores_with_botch_risk(self):
        chain, _ = decay_chain(3, 10)
        d = check_repair_matrix(chain, 10, 3, 7, hep=0.25)
        down = chain.index_of(DOWN_STATE)
        assert d[down, chain.index_of(share_state_name(10))] == pytest.approx(0.75)
        assert d[down, chain.index_of(share_state_name(9))] == pytest.approx(0.25)

    def test_botched_restore_of_k_equals_n_scheme_stays_down(self):
        # With k == N a botched run leaves N - 1 < k shares: straight to DOWN.
        chain, _ = decay_chain(3, 3)
        d = check_repair_matrix(chain, 3, 3, 3, hep=0.2)
        down = chain.index_of(DOWN_STATE)
        assert d[down, chain.index_of(share_state_name(3))] == pytest.approx(0.8)
        assert d[down, down] == pytest.approx(0.2)

    def test_reliability_mode_leaves_down_absorbing(self):
        chain, _ = decay_chain(3, 10)
        d = check_repair_matrix(chain, 10, 3, 7, hep=0.1, restore_from_down=False)
        down = chain.index_of(DOWN_STATE)
        row = np.zeros(chain.n_states)
        row[down] = 1.0
        np.testing.assert_array_equal(d[down], row)

    def test_hep_zero_repairs_deterministically(self):
        chain, _ = decay_chain(3, 10)
        d = check_repair_matrix(chain, 10, 3, 10, hep=0.0)
        full = chain.index_of(share_state_name(10))
        for s in range(3, 10):
            assert d[chain.index_of(share_state_name(s)), full] == 1.0

    @pytest.mark.parametrize(
        "k,threshold,n",
        [(0, 7, 10), (3, 2, 10), (3, 11, 10), (8, 7, 10)],
    )
    def test_invalid_ordering_rejected(self, k, threshold, n):
        chain, _ = decay_chain(3, 10)
        with pytest.raises(SolverError):
            check_repair_matrix(chain, n, k, threshold, hep=0.1)

    @pytest.mark.parametrize("hep", [-0.1, 1.5])
    def test_invalid_hep_rejected(self, hep):
        chain, _ = decay_chain(3, 10)
        with pytest.raises(SolverError):
            check_repair_matrix(chain, 10, 3, 7, hep=hep)


class TestCycleOperator:
    def test_transport_rows_are_stochastic(self):
        chain, _ = decay_chain(3, 10, rate=1e-3)
        m, _ = cycle_operator(chain.generator_matrix(), MONTH)
        assert np.all(m >= -1e-15)
        np.testing.assert_allclose(m.sum(axis=1), 1.0, atol=1e-12)

    def test_occupancy_rows_sum_to_period(self):
        chain, _ = decay_chain(3, 10, rate=1e-3)
        _, occ = cycle_operator(chain.generator_matrix(), MONTH)
        np.testing.assert_allclose(occ.sum(axis=1), MONTH, rtol=1e-12)

    def test_transport_matches_binomial_closed_form(self):
        # For the pure-death share chain the count after T is binomial:
        # P(s -> t) = C(s, t) p^t (1 - p)^(s - t) with p = exp(-lambda T),
        # for k <= t <= s, and DOWN absorbs the remainder.
        rate, k, n = 1e-3, 3, 10
        chain, _ = decay_chain(k, n, rate=rate)
        m, _ = cycle_operator(chain.generator_matrix(), MONTH)
        p = math.exp(-rate * MONTH)
        for s in range(k, n + 1):
            i = chain.index_of(share_state_name(s))
            for t in range(k, s + 1):
                expected = math.comb(s, t) * p**t * (1.0 - p) ** (s - t)
                assert m[i, chain.index_of(share_state_name(t))] == pytest.approx(
                    expected, rel=1e-10
                )

    def test_invalid_period_rejected(self):
        chain, _ = decay_chain(3, 10)
        for period in (0.0, -5.0):
            with pytest.raises(SolverError):
                cycle_operator(chain.generator_matrix(), period)

    def test_non_square_generator_rejected(self):
        with pytest.raises(SolverError):
            cycle_operator(np.zeros((3, 2)), MONTH)


class TestCycleStartDistribution:
    def test_fixed_point_of_identity_free_cycle(self):
        chain, _ = decay_chain(3, 10, rate=1e-3)
        m, _ = cycle_operator(chain.generator_matrix(), MONTH)
        d = check_repair_matrix(chain, 10, 3, 10, hep=0.05)
        phi = cycle_start_distribution(m @ d)
        assert phi.sum() == pytest.approx(1.0)
        np.testing.assert_allclose(phi @ (m @ d), phi, atol=1e-10)


class TestCycleStationaryAvailability:
    def test_result_is_self_consistent(self):
        chain, _ = decay_chain(3, 10, rate=1e-3)
        d = check_repair_matrix(chain, 10, 3, 7, hep=0.1)
        result = cycle_stationary_availability(chain, d, MONTH)
        assert 0.0 < result.availability < 1.0
        assert result.cycle_start.sum() == pytest.approx(1.0)
        assert result.occupancy_hours.sum() == pytest.approx(MONTH)
        assert result.state_names == chain.state_names
        down = list(chain.state_names).index(DOWN_STATE)
        expected = 1.0 - result.occupancy_hours[down] / MONTH
        assert result.availability == pytest.approx(expected)

    def test_uniformization_agrees_with_expm(self):
        chain, _ = decay_chain(3, 10, rate=1e-3)
        d = check_repair_matrix(chain, 10, 3, 7, hep=0.1)
        exact = cycle_stationary_availability(chain, d, MONTH, method="expm")
        reference = cycle_stationary_availability(
            chain, d, MONTH, method="uniformization"
        )
        # The reference integrates occupancy by trapezoid over a 201-point
        # grid, so agreement is quadrature-limited rather than exact.
        assert reference.availability == pytest.approx(
            exact.availability, abs=1e-5
        )
        np.testing.assert_allclose(
            reference.cycle_start, exact.cycle_start, atol=1e-6
        )

    def test_longer_period_never_improves_availability(self):
        chain, _ = decay_chain(3, 10, rate=1e-3)
        d = check_repair_matrix(chain, 10, 3, 10, hep=0.1)
        availabilities = [
            cycle_stationary_availability(chain, d, period).availability
            for period in (24.0, MONTH, 8760.0)
        ]
        assert availabilities == sorted(availabilities, reverse=True)

    def test_lazier_repair_threshold_never_improves_availability(self):
        chain, _ = decay_chain(3, 10, rate=1e-3)
        eager = check_repair_matrix(chain, 10, 3, 10, hep=0.1)
        lazy = check_repair_matrix(chain, 10, 3, 4, hep=0.1)
        assert (
            cycle_stationary_availability(chain, eager, MONTH).availability
            >= cycle_stationary_availability(chain, lazy, MONTH).availability
        )

    def test_repair_shape_mismatch_rejected(self):
        chain, _ = decay_chain(3, 10)
        with pytest.raises(SolverError):
            cycle_stationary_availability(chain, np.eye(3), MONTH)

    def test_unknown_method_rejected(self):
        chain, _ = decay_chain(3, 10)
        d = check_repair_matrix(chain, 10, 3, 7, hep=0.1)
        with pytest.raises(SolverError):
            cycle_stationary_availability(chain, d, MONTH, method="magic")


class TestSurvivalCurve:
    """Tahoe-parity fixture: the reliability trajectory of a 3-of-10 store.

    The reference is computed independently of any matrix exponential: for
    identical exponential shares the one-period transition probabilities are
    exactly binomial, so the curve must match a hand-built discrete iteration
    to numerical precision.
    """

    RATE = 1e-4

    def _reference_curve(self, k, n, threshold, rate, period, n_cycles):
        # States in chain order: SH{n} .. SH{k}, DOWN (see the chain builder).
        names = [share_state_name(s) for s in range(n, k - 1, -1)] + [DOWN_STATE]
        index = {name: i for i, name in enumerate(names)}
        size = len(names)
        p_live = math.exp(-rate * period)
        m = np.zeros((size, size))
        m[index[DOWN_STATE], index[DOWN_STATE]] = 1.0
        for s in range(k, n + 1):
            i = index[share_state_name(s)]
            for t in range(k, s + 1):
                m[i, index[share_state_name(t)]] = (
                    math.comb(s, t) * p_live**t * (1.0 - p_live) ** (s - t)
                )
            m[i, index[DOWN_STATE]] = 1.0 - m[i].sum()
        d = np.eye(size)
        for s in range(k, threshold):
            i = index[share_state_name(s)]
            d[i, :] = 0.0
            d[i, index[share_state_name(n)]] = 1.0  # hep = 0: never botched
        p = np.zeros(size)
        p[index[share_state_name(n)]] = 1.0
        curve = []
        for _ in range(n_cycles):
            p = p @ m @ d
            curve.append(1.0 - p[index[DOWN_STATE]])
        return np.asarray(curve)

    def test_matches_independent_binomial_reference(self):
        k, n, threshold = 3, 10, 7
        chain, _ = decay_chain(k, n, rate=self.RATE)
        d = check_repair_matrix(
            chain, n, k, threshold, hep=0.0, restore_from_down=False
        )
        curve = survival_curve(chain, d, MONTH, n_cycles=12)
        reference = self._reference_curve(k, n, threshold, self.RATE, MONTH, 12)
        np.testing.assert_allclose(curve, reference, atol=1e-12)

    def test_monotone_nonincreasing_in_reliability_mode(self):
        chain, _ = decay_chain(3, 10, rate=1e-3)
        d = check_repair_matrix(chain, 10, 3, 7, hep=0.1, restore_from_down=False)
        curve = survival_curve(chain, d, MONTH, n_cycles=24)
        assert np.all(np.diff(curve) <= 1e-15)
        assert curve[0] <= 1.0 and curve[-1] > 0.0

    def test_scrubbing_beats_no_scrubbing(self):
        chain, _ = decay_chain(3, 10, rate=1e-3)
        scrubbed = check_repair_matrix(
            chain, 10, 3, 10, hep=0.0, restore_from_down=False
        )
        unscrubbed = check_repair_matrix(
            chain, 10, 3, 3, hep=0.0, restore_from_down=False
        )
        repaired = survival_curve(chain, scrubbed, MONTH, n_cycles=24)
        decayed = survival_curve(chain, unscrubbed, MONTH, n_cycles=24)
        assert np.all(repaired >= decayed)
        assert repaired[-1] > decayed[-1]

    def test_initial_state_option(self):
        chain, _ = decay_chain(3, 10, rate=1e-3)
        d = check_repair_matrix(chain, 10, 3, 7, hep=0.0, restore_from_down=False)
        degraded = survival_curve(
            chain, d, MONTH, n_cycles=6, initial_state=share_state_name(3)
        )
        pristine = survival_curve(chain, d, MONTH, n_cycles=6)
        assert degraded[0] < pristine[0]

    def test_requires_at_least_one_cycle(self):
        chain, _ = decay_chain(3, 10)
        d = check_repair_matrix(chain, 10, 3, 7, hep=0.0)
        with pytest.raises(SolverError):
            survival_curve(chain, d, MONTH, n_cycles=0)


class TestPolicyAnalyticalFace:
    def test_erasure_policy_routes_through_checker_cycle(self):
        # The policy's analytical face must agree with a by-hand assembly of
        # the cycle machinery at the same operating point.
        from repro.core.evaluation import analytical_result

        params = erasure_params(3, 10, rate=1e-3, hep=0.1)
        policy = erasure_policy(3, 10, repair_threshold=7, check_period_hours=MONTH)
        chain = build_erasure_decay_chain(params, scheme=policy.scheme)
        d = check_repair_matrix(chain, 10, 3, 7, hep=0.1)
        by_hand = cycle_stationary_availability(chain, d, MONTH)
        result = analytical_result(params, policy)
        assert result.availability == pytest.approx(by_hand.availability, abs=1e-12)

    def test_weibull_share_decay_rejected(self):
        from dataclasses import replace

        from repro.core.evaluation import evaluate

        params = replace(erasure_params(3, 10), failure_shape=2.0)
        with pytest.raises(ConfigurationError):
            evaluate(params, erasure_policy(3, 10), backend="monte_carlo",
                     n_iterations=10, seed=0)
