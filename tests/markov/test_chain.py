"""Unit tests for the Markov chain representation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import StateError, TransitionError
from repro.markov import ChainBuilder, MarkovChain, State, Transition


def two_state_chain(up_rate=1.0, down_rate=0.1) -> MarkovChain:
    return MarkovChain(
        states=[State("UP", up=True), State("DOWN", up=False)],
        transitions=[
            Transition("UP", "DOWN", down_rate),
            Transition("DOWN", "UP", up_rate),
        ],
        name="two-state",
    )


class TestStates:
    def test_duplicate_state_rejected(self):
        with pytest.raises(StateError):
            MarkovChain([State("A"), State("A")])

    def test_empty_chain_rejected(self):
        with pytest.raises(StateError):
            MarkovChain([])

    def test_empty_name_rejected(self):
        with pytest.raises(StateError):
            State("")

    def test_up_and_down_partition(self):
        chain = two_state_chain()
        assert chain.up_states() == ("UP",)
        assert chain.down_states() == ("DOWN",)
        assert chain.up_mask().tolist() == [True, False]

    def test_index_and_lookup(self):
        chain = two_state_chain()
        assert chain.index_of("DOWN") == 1
        assert chain.state("UP").up is True
        assert chain.has_state("UP") and not chain.has_state("MISSING")
        with pytest.raises(StateError):
            chain.index_of("MISSING")

    def test_iteration_and_len(self):
        chain = two_state_chain()
        assert len(chain) == 2
        assert [s.name for s in chain] == ["UP", "DOWN"]


class TestTransitions:
    def test_self_loop_rejected(self):
        with pytest.raises(TransitionError):
            Transition("A", "A", 1.0)

    def test_negative_rate_rejected(self):
        with pytest.raises(TransitionError):
            Transition("A", "B", -1.0)

    def test_unknown_endpoint_rejected(self):
        with pytest.raises(StateError):
            MarkovChain([State("A")], [Transition("A", "B", 1.0)])

    def test_rate_aggregation(self):
        chain = MarkovChain(
            [State("A"), State("B", up=False)],
            [Transition("A", "B", 0.5), Transition("A", "B", 0.25), Transition("B", "A", 1.0)],
        )
        assert chain.rate("A", "B") == pytest.approx(0.75)
        assert chain.exit_rate("A") == pytest.approx(0.75)
        assert chain.successors("A") == {"B": pytest.approx(0.75)}
        assert chain.predecessors("B") == {"A": pytest.approx(0.75)}


class TestGeneratorMatrix:
    def test_rows_sum_to_zero(self):
        chain = two_state_chain()
        q = chain.generator_matrix()
        assert np.allclose(q.sum(axis=1), 0.0)

    def test_off_diagonal_values(self):
        chain = two_state_chain(up_rate=2.0, down_rate=0.5)
        q = chain.generator_matrix()
        assert q[0, 1] == pytest.approx(0.5)
        assert q[1, 0] == pytest.approx(2.0)
        assert q[0, 0] == pytest.approx(-0.5)

    def test_rate_matrix_has_zero_diagonal(self):
        chain = two_state_chain()
        r = chain.rate_matrix()
        assert np.all(np.diag(r) == 0.0)

    def test_uniformized_dtmc_is_stochastic(self):
        chain = two_state_chain(up_rate=3.0, down_rate=0.2)
        p, lam = chain.uniformized_dtmc()
        assert lam >= 3.0
        assert np.allclose(p.sum(axis=1), 1.0)
        assert np.all(p >= 0.0)

    def test_uniformization_rate_too_small_rejected(self):
        chain = two_state_chain(up_rate=3.0, down_rate=0.2)
        with pytest.raises(TransitionError):
            chain.uniformized_dtmc(uniformization_rate=1.0)


class TestDerivedChains:
    def test_absorbing_copy_removes_outgoing(self):
        chain = two_state_chain()
        absorbing = chain.with_states_absorbing(["DOWN"])
        assert absorbing.exit_rate("DOWN") == 0.0
        assert absorbing.exit_rate("UP") > 0.0

    def test_relabelled(self):
        chain = two_state_chain()
        renamed = chain.relabelled({"UP": "GOOD"})
        assert renamed.has_state("GOOD")
        assert renamed.rate("GOOD", "DOWN") == pytest.approx(0.1)

    def test_relabelled_merge_rejected(self):
        chain = two_state_chain()
        with pytest.raises(StateError):
            chain.relabelled({"UP": "DOWN"})


class TestSerialisation:
    def test_dict_round_trip(self):
        chain = two_state_chain()
        rebuilt = MarkovChain.from_dict(chain.to_dict())
        assert rebuilt.state_names == chain.state_names
        assert np.allclose(rebuilt.generator_matrix(), chain.generator_matrix())

    def test_dot_export_mentions_all_states(self):
        chain = two_state_chain()
        dot = chain.to_dot()
        assert '"UP"' in dot and '"DOWN"' in dot and "digraph" in dot


class TestBuilderBasics:
    def test_builder_builds_equivalent_chain(self):
        builder = ChainBuilder("built")
        builder.add_up_state("UP").add_down_state("DOWN")
        builder.add_transition("UP", "DOWN", 0.1).add_transition("DOWN", "UP", 1.0)
        chain = builder.build()
        assert chain.rate("UP", "DOWN") == pytest.approx(0.1)

    def test_builder_zero_rate_dropped(self):
        builder = ChainBuilder()
        builder.add_up_state("A").add_up_state("B")
        builder.add_transition("A", "B", 0.0)
        builder.add_transition("A", "B", 1.0)
        builder.add_transition("B", "A", 1.0)
        assert builder.n_transitions == 2

    def test_builder_duplicate_state_rejected(self):
        builder = ChainBuilder()
        builder.add_up_state("A")
        with pytest.raises(StateError):
            builder.add_up_state("A")

    def test_builder_undeclared_state_rejected(self):
        builder = ChainBuilder()
        builder.add_up_state("A")
        with pytest.raises(StateError):
            builder.add_transition("A", "B", 1.0)

    def test_builder_bidirectional(self):
        builder = ChainBuilder()
        builder.add_up_state("A").add_down_state("B")
        builder.add_bidirectional("A", "B", 0.5, 2.0)
        chain = builder.build()
        assert chain.rate("A", "B") == pytest.approx(0.5)
        assert chain.rate("B", "A") == pytest.approx(2.0)
